package main

// Goroutine-lifecycle check. A `go` statement in non-test code must be
// tied to something that can stop it — a context, a stop/done channel, a
// WaitGroup, a channel it ranges over or selects on, or a resource the
// launching function defers Close/Shutdown/Stop on — so nodes shut down
// cleanly instead of leaking workers that outlive their owner.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// stopNames are identifier/field names that, when read inside a goroutine
// body, indicate a lifecycle flag or channel.
var stopNames = map[string]bool{
	"stop": true, "stopped": true, "stopCh": true, "done": true, "doneCh": true,
	"quit": true, "quitCh": true, "closed": true, "closing": true,
	"shutdown": true, "ctx": true, "cancel": true,
}

func runGoLifetime(p *Pass) {
	// Index same-package function declarations so `go t.readLoop(conn)`
	// can be judged by the body it launches.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtManaged(p, fd, gs, decls) {
					return true
				}
				p.Reportf(gs.Pos(), "goroutine has no visible stop signal (context, stop/done channel, WaitGroup, or deferred Close of something it uses); tie its lifetime to its owner or //lint:allow golifetime with the mechanism")
				return true
			})
		}
	}
}

// goStmtManaged reports whether the launched goroutine's lifetime is
// visibly managed.
func goStmtManaged(p *Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	var body *ast.BlockStmt
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fd := decls[p.ObjectOf(fun)]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[p.ObjectOf(fun.Sel)]; fd != nil {
			body = fd.Body
		}
	}
	// A lifecycle-bearing argument (context, channel, WaitGroup) counts
	// even when the body is out of reach (cross-package launch).
	for _, arg := range gs.Call.Args {
		if lifecycleExpr(p, arg) {
			return true
		}
	}
	if body == nil {
		return false
	}
	if bodyReferencesStop(p, body) {
		return true
	}
	// Deferred Close/Shutdown/Stop in the launcher on a value the
	// goroutine uses: closing the resource is what unblocks and ends it
	// (the accept-loop-on-listener pattern).
	return deferClosesUsed(p, enclosing, body)
}

// lifecycleExpr reports whether e is a context, channel, or WaitGroup.
func lifecycleExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if isContext(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// bodyReferencesStop scans a goroutine body for lifecycle constructs.
func bodyReferencesStop(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr: // channel receive
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt: // ranging a channel ends when it closes
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				// wg.Done / wg.Wait / ctx.Done / ctx.Err
				if lifecycleExpr(p, sel.X) {
					found = true
				}
			}
		case *ast.Ident:
			if stopNames[strings.ToLower(n.Name)] {
				found = true
			}
			if t := p.TypeOf(n); t != nil && isContext(t) {
				found = true
			}
		}
		return true
	})
	return found
}

// deferClosesUsed reports whether enclosing defers Close/Shutdown/Stop on
// an object the goroutine body references.
func deferClosesUsed(p *Pass, enclosing *ast.FuncDecl, body *ast.BlockStmt) bool {
	var closed []types.Object
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Close", "Shutdown", "Stop", "Wait":
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := p.ObjectOf(id); obj != nil {
					closed = append(closed, obj)
				}
			}
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.ObjectOf(id)
		for _, c := range closed {
			if obj == c {
				found = true
			}
		}
		return true
	})
	return found
}

package main

// The analyzer framework: named checks with file/line diagnostics, a
// //lint:allow suppression directive, and the boundary-file list that
// exempts the designated wall-clock code from the determinism checks.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position and check name.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one separately-testable invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the full check set, in reporting order.
var Analyzers = []*Analyzer{
	{Name: "walltime", Doc: "no wall-clock time (time.Now/Since/After/...) outside the designated boundary files; deterministic code threads a simclock.Clock", Run: runWalltime},
	{Name: "globalrand", Doc: "no global math/rand top-level functions outside boundary files; randomness comes from a seeded *rand.Rand", Run: runGlobalRand},
	{Name: "maporder", Doc: "no map-iteration-order-dependent output (prints or unsorted slice accumulation inside a map range) in simulation-reachable packages", Run: runMapOrder},
	{Name: "lockcopy", Doc: "no copying of values containing sync or atomic state in assignments, returns, or range statements", Run: runLockCopy},
	{Name: "lockheld", Doc: "every mutex Lock/RLock has a same-function Unlock/RUnlock (deferred or direct)", Run: runLockHeld},
	{Name: "lockorder", Doc: "nested acquisition of the known hot locks follows the canonical order (Node < ShardRouter < Directory < InterestTable; tcpPeer < TCPTransport)", Run: runLockOrder},
	{Name: "metricsvalue", Doc: "metrics instruments are held as pointers (*metrics.Counter, ...) so a nil registry stays a no-op; value-typed fields defeat that contract", Run: runMetricsValue},
	{Name: "metricshotlookup", Doc: "no Registry.Counter/Gauge/Histogram lookups inside loops; resolve instruments once and hold the pointer", Run: runMetricsHotLookup},
	{Name: "golifetime", Doc: "goroutines launched in non-test code must be tied to a stop channel, context, WaitGroup, or a deferred Close of something they use", Run: runGoLifetime},
	{Name: "droppederr", Doc: "error returns from internal/transport and encode/decode calls must not be discarded", Run: runDroppedErr},
	{Name: "gobuse", Doc: "no encoding/gob imports; messages are framed by the explicit binary codec in internal/wire, whose sizes the bandwidth model prices", Run: runGobUse},
	{Name: "wiresize", Doc: "send helpers (sendTo/sendToPri/floodCtl) must price the frame with payload.WireSize(); anything else decouples the bandwidth model from the encoded bytes", Run: runWireSize},
	{Name: "lintdirective", Doc: "//lint:allow directives are well-formed (known check, non-empty reason) and actually suppress something", Run: nil}, // enforced by the runner
}

func analyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

var knownChecks = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers {
		m[a.Name] = true
	}
	return m
}()

// Pass is one analyzer's view of one package.
type Pass struct {
	Mod *Module
	Pkg *Package

	check string
	sink  *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     p.Mod.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// render prints an expression compactly, for messages and lock keys.
func (p *Pass) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Mod.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// --- scoping ---------------------------------------------------------------

// boundaryFile reports whether the file holding pos is one of the
// designated wall-clock boundary files, where real time and process-wide
// randomness are legal: internal/simclock (the clock abstraction itself),
// internal/athena/wall.go (real-time Timers), internal/transport (real
// sockets, real backoff), and cmd/athenad (the real-time daemon).
func (p *Pass) boundaryFile(pos token.Pos) bool {
	if p.Pkg.Fixture {
		return false
	}
	rel := p.pkgRel()
	switch rel {
	case "internal/simclock", "internal/transport", "cmd/athenad":
		return true
	case "internal/athena":
		return filepath.Base(p.Mod.Fset.Position(pos).Filename) == "wall.go"
	}
	return false
}

// pkgRel is the package path relative to the module root ("" for the root
// package).
func (p *Pass) pkgRel() string {
	if p.Pkg.Path == p.Mod.Path {
		return ""
	}
	return strings.TrimPrefix(p.Pkg.Path, p.Mod.Path+"/")
}

// simScoped reports whether the package is simulation-reachable: the
// packages whose behaviour must be a pure function of the seed because
// the figures and ablation tables are computed from them.
func (p *Pass) simScoped() bool {
	if p.Pkg.Fixture {
		return true
	}
	switch p.pkgRel() {
	case "", // root package: schemes, simnet glue
		"internal/netsim",
		"internal/schedule",
		"internal/experiment",
		"internal/workload",
		"internal/gossip",
		"internal/athena":
		return true
	}
	return false
}

// --- //lint:allow directives ------------------------------------------------

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
	bad    string // non-empty if malformed
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in the package. A
// directive suppresses diagnostics of its check on its own line and, when
// it stands alone on a line, on the next line.
func collectAllows(mod *Module, pkg *Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				d := &allowDirective{pos: mod.Fset.Position(c.Pos())}
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				switch {
				case len(fields) == 0:
					d.bad = "missing check name"
				case !knownChecks[fields[0]]:
					d.bad = fmt.Sprintf("unknown check %q (known: %s)", fields[0], strings.Join(analyzerNames(), ", "))
				case len(fields) < 2:
					d.check = fields[0]
					d.bad = fmt.Sprintf("missing reason after %q", fields[0])
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether directive d covers diagnostic dg.
func (d *allowDirective) suppresses(dg Diagnostic) bool {
	if d.bad != "" || d.check != dg.Check || d.pos.Filename != dg.Pos.Filename {
		return false
	}
	return d.pos.Line == dg.Pos.Line || d.pos.Line == dg.Pos.Line-1
}

// --- runner -----------------------------------------------------------------

// RunAnalyzers runs the selected checks (nil = all) over the packages and
// returns the surviving diagnostics sorted by position. The lintdirective
// check — malformed or unused //lint:allow comments — is enforced here.
func RunAnalyzers(mod *Module, pkgs []*Package, checks map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range Analyzers {
			if a.Run == nil || (checks != nil && !checks[a.Name]) {
				continue
			}
			pass := &Pass{Mod: mod, Pkg: pkg, check: a.Name, sink: &raw}
			a.Run(pass)
		}
		allows := collectAllows(mod, pkg)
		for _, dg := range raw {
			suppressed := false
			for _, d := range allows {
				if d.suppresses(dg) {
					d.used = true
					suppressed = true
				}
			}
			if !suppressed {
				diags = append(diags, dg)
			}
		}
		if checks == nil || checks["lintdirective"] {
			for _, d := range allows {
				switch {
				case d.bad != "":
					diags = append(diags, Diagnostic{Pos: d.pos, Check: "lintdirective", Message: "malformed //lint:allow: " + d.bad})
				case !d.used:
					diags = append(diags, Diagnostic{Pos: d.pos, Check: "lintdirective", Message: fmt.Sprintf("//lint:allow %s suppresses nothing; delete it or fix the annotation", d.check)})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

package main

// Lane-isolation check. The PDES kernel's determinism guarantee — runs
// are byte-identical across -workers settings — holds because lane
// handlers only touch state their own lane owns; every cross-lane effect
// is buffered as a Lane.Post and merged at the window barrier in
// canonical order. This check turns that convention into a proof
// obligation: it computes the set of functions reachable from kernel
// lane entry points (handlers registered through AtCall / AfterCall /
// AfterArg, resolved through stored method values and func-typed fields
// by the call graph) and flags, inside that set, writes to package-level
// variables and writes or calls that reach into another instance of the
// handler's own type — the "peer lane" shape that bypasses the mailbox.
// A held mutex exempts a write: serialized cross-lane state is ordered
// by the lock, not the worker interleaving, and the lock checks audit
// the mutex itself.

import (
	"go/ast"
	"go/types"

	"athena/internal/lintkit"
)

// laneEntryMethods are the kernel registration calls whose second
// argument is a lane handler. Matched by name (like the hot-lock table)
// so fixtures can model the kernel without importing it.
var laneEntryMethods = map[string]bool{
	"AtCall":    true,
	"AfterCall": true,
	"AfterArg":  true,
}

// laneReachable computes, once per session, the call-graph nodes
// reachable from any lane handler registered anywhere in the module or
// the fixture under analysis.
func laneReachable(p *Pass) map[*lintkit.FuncNode]bool {
	const key = "lane.reach"
	if r, ok := p.Session.Cache[key].(map[*lintkit.FuncNode]bool); ok {
		return r
	}
	g := p.Session.Graph()
	reach := g.Reachable(laneRoots(g, sessionPkgs(p)))
	p.Session.Cache[key] = reach
	return reach
}

// laneRoots scans pkgs for handler registrations and resolves each
// handler argument to its call-graph nodes.
func laneRoots(g *lintkit.CallGraph, pkgs []*Package) []*lintkit.FuncNode {
	var roots []*lintkit.FuncNode
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !laneEntryMethods[sel.Sel.Name] || len(call.Args) < 2 {
					return true
				}
				roots = append(roots, handlerNodes(g, pkg, call.Args[1])...)
				return true
			})
		}
	}
	return roots
}

// sessionPkgs is the union of the module's packages and the packages
// under analysis (fixtures), module first.
func sessionPkgs(p *Pass) []*Package {
	pkgs := append([]*Package(nil), p.Mod.Pkgs...)
	seen := make(map[*Package]bool, len(pkgs))
	for _, q := range pkgs {
		seen[q] = true
	}
	for _, q := range p.Session.Pkgs {
		if !seen[q] {
			pkgs = append(pkgs, q)
		}
	}
	return pkgs
}

// handlerNodes resolves the handler argument of a registration call to
// call-graph roots: a literal or named function directly, and a
// func-typed field or variable (the stored-method-value hot path) to
// every address-taken function of the same signature.
func handlerNodes(g *lintkit.CallGraph, pkg *Package, arg ast.Expr) []*lintkit.FuncNode {
	switch a := arg.(type) {
	case *ast.FuncLit:
		if n := g.LitNode(a); n != nil {
			return []*lintkit.FuncNode{n}
		}
		return nil
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[a].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return []*lintkit.FuncNode{n}
			}
			return nil
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[a.Sel].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return []*lintkit.FuncNode{n}
			}
			return nil
		}
	case *ast.ParenExpr:
		return handlerNodes(g, pkg, a.X)
	}
	if t := pkg.Info.TypeOf(arg); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			return g.TakenWithSignature(sig)
		}
	}
	return nil
}

func runLaneShare(p *Pass) {
	if !simScoped(p) {
		return
	}
	reach := laneReachable(p)
	for _, n := range p.Session.Graph().Nodes() {
		if n.Pkg != p.Pkg || !reach[n] || n.Body() == nil {
			continue
		}
		if boundaryFile(p, n.Pos()) {
			continue
		}
		checkLaneBody(p, n)
	}
}

// checkLaneBody walks one lane-reachable function linearly, tracking how
// many mutexes are held (any mutex — the lock checks audit which), and
// flags the isolation-breaking shapes reached with no lock held.
func checkLaneBody(p *Pass, n *lintkit.FuncNode) {
	recvObj, recvType := receiverOf(p, n)
	held := 0
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literals are their own nodes
		}
		if d, isDefer := node.(*ast.DeferStmt); isDefer {
			if _, _, ok := mutexMethod(p, d.Call); ok {
				return false // deferred unlock: lock held to function end
			}
			return true
		}
		switch node := node.(type) {
		case *ast.CallExpr:
			if method, _, ok := mutexMethod(p, node); ok {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held++
				case "Unlock", "RUnlock":
					if held > 0 {
						held--
					}
				}
				return true
			}
			if held > 0 {
				return true
			}
			// Peer-instance method call: lane code invoking a method on
			// another value of its own receiver type.
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if base, ok := peerInstance(p, sel.X, recvObj, recvType); ok {
					p.Reportf(node.Pos(), "lane handler code calls %s.%s on another %s; cross-lane effects must be posted to the mailbox (Lane.Post) and merged at the barrier", base, sel.Sel.Name, recvType.Obj().Name())
				}
			}
		case *ast.AssignStmt:
			if held > 0 {
				return true
			}
			for _, lhs := range node.Lhs {
				checkLaneWrite(p, n, lhs, recvObj, recvType)
			}
		case *ast.IncDecStmt:
			if held > 0 {
				return true
			}
			checkLaneWrite(p, n, node.X, recvObj, recvType)
		}
		return true
	})
}

// checkLaneWrite flags one assignment target if it is a package-level
// variable or state of a peer instance.
func checkLaneWrite(p *Pass, n *lintkit.FuncNode, lhs ast.Expr, recvObj types.Object, recvType *types.Named) {
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	obj := p.ObjectOf(base)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == p.Pkg.Types.Scope() {
		p.Reportf(lhs.Pos(), "lane handler code writes package-level var %s; worker interleaving orders the writes, so runs stop being a pure function of the seed — thread the state through the lane or guard it with a mutex", base.Name)
		return
	}
	if _, bare := lhs.(*ast.Ident); bare {
		return // a bare local; only selector paths can reach peer state
	}
	if name, ok := peerInstance(p, base, recvObj, recvType); ok {
		p.Reportf(lhs.Pos(), "lane handler code writes %s, state of another %s; cross-lane effects must be posted to the mailbox (Lane.Post) and merged at the barrier", name+"."+pathAfterBase(p, lhs), recvType.Obj().Name())
	}
}

// receiverOf returns the receiver object and named type of a method
// node, or nils for plain functions and literals.
func receiverOf(p *Pass, n *lintkit.FuncNode) (types.Object, *types.Named) {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil, nil
	}
	field := n.Decl.Recv.List[0]
	var obj types.Object
	if len(field.Names) > 0 {
		obj = p.ObjectOf(field.Names[0])
	}
	t := n.Pkg.Info.TypeOf(field.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return obj, named
}

// peerInstance reports whether e denotes a value of the enclosing
// method's receiver type that is not the receiver itself — the "other
// lane" shape. Returns the rendered base expression.
func peerInstance(p *Pass, e ast.Expr, recvObj types.Object, recvType *types.Named) (string, bool) {
	if recvType == nil {
		return "", false
	}
	base := baseIdent(e)
	if base == nil {
		return "", false
	}
	obj := p.ObjectOf(base)
	if obj == nil || obj == recvObj {
		return "", false
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() == recvType.Obj() {
		return base.Name, true
	}
	return "", false
}

// baseIdent peels selectors, indexes, derefs, and parens down to the
// root identifier of an lvalue path, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pathAfterBase renders the field path of an lvalue without its base
// identifier, for messages ("inbox" out of "dst.inbox").
func pathAfterBase(p *Pass, lhs ast.Expr) string {
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		return pathAfterBase(p, idx.X)
	}
	return p.Render(lhs)
}

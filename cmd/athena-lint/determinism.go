package main

// Determinism checks. The figures and ablation tables are only
// reproducible because every simulation run is a pure function of its
// seed; these analyzers keep wall-clock reads, process-global randomness,
// and map-iteration-order-dependent output from leaking back in.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wallTimeFuncs are the time package functions that read or wait on the
// real clock. time.Duration arithmetic and time.Time methods are fine —
// the poison is where the instant comes from.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "Sleep": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runWalltime(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(id).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallTimeFuncs[fn.Name()] {
				return true
			}
			// Methods like time.Time.After compare instants; only the
			// package-level functions touch the wall clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if boundaryFile(p, id.Pos()) {
				return true
			}
			p.Reportf(id.Pos(), "time.%s reads the wall clock; deterministic code must take its instant from a simclock.Clock (boundary files: internal/simclock, internal/athena/wall.go, internal/transport, cmd/athenad)", fn.Name())
			return true
		})
	}
}

// globalRandFuncs are the math/rand top-level functions backed by the
// shared process-wide source. rand.New / rand.NewSource and *rand.Rand
// methods are the sanctioned seeded alternative.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(id).(*types.Func)
			if !ok || fn.Pkg() == nil || !globalRandFuncs[fn.Name()] {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Top-level functions only; methods on *rand.Rand carry a seed.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if boundaryFile(p, id.Pos()) {
				return true
			}
			p.Reportf(id.Pos(), "rand.%s draws from the process-global source; use a seeded *rand.Rand so runs replay from their seed", fn.Name())
			return true
		})
	}
}

// runMapOrder flags map-range loops in simulation-reachable packages whose
// body produces order-sensitive output: a direct print, or an append to a
// slice declared outside the loop that the function never sorts. Loops
// that aggregate commutatively (sums, map writes, sorted-key collection)
// pass untouched.
func runMapOrder(p *Pass) {
	if !simScoped(p) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seen := make(map[ast.Node]bool) // dedup sinks under nested map ranges
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(p, fd, rs, seen)
				return true
			})
		}
	}
}

// checkMapRangeBody scans one map-range body for order-sensitive sinks.
func checkMapRangeBody(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, seen map[ast.Node]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if seen[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := printLike(p, n); ok {
				seen[n] = true
				p.Reportf(n.Pos(), "%s inside a map range emits in map-iteration order; collect and sort keys first", name)
			}
		case *ast.AssignStmt:
			// s += ... on a string declared outside the loop concatenates
			// in map-iteration order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if dest, ok := n.Lhs[0].(*ast.Ident); ok {
					obj := p.ObjectOf(dest)
					if obj != nil && obj.Pos() != token.NoPos &&
						(obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
						if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
							seen[n] = true
							p.Reportf(n.Pos(), "%s concatenates in map-iteration order in %s; iterate sorted keys instead", dest.Name, fd.Name.Name)
						}
					}
				}
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				dest, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.ObjectOf(dest)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				// Only appends to slices declared outside the loop leak
				// iteration order out of it.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				if sortedInFunc(p, fd, obj) {
					seen[n] = true
					continue
				}
				seen[n] = true
				p.Reportf(n.Pos(), "%s accumulates in map-iteration order and is never sorted in %s; sort it (or iterate sorted keys)", dest.Name, fd.Name.Name)
			}
		}
		return true
	})
}

// printLike reports whether call is a fmt print/sprint or a direct write
// to a Builder/Buffer/Writer — sinks where emission order is the output.
func printLike(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		// Only emission: Sprint*/Errorf are pure and their results are
		// judged at their sink (append, +=) instead.
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			return "fmt." + fn.Name(), true
		}
	case "strings", "bytes":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch fn.Name() {
			case "WriteString", "WriteByte", "WriteRune", "Write":
				return fn.Pkg().Name() + " " + fn.Name(), true
			}
		}
	}
	return "", false
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedInFunc reports whether fd contains a sort/slices sort call that
// mentions obj, anywhere in the function (sorting before reuse is the
// caller's contract; position is not checked so helpers that sort in a
// defer or at the top of a retry loop still pass). A call to a
// same-package helper that passes obj to a parameter the helper directly
// sorts also counts — sortAdverts-style wrappers are how shared ordering
// is factored out, and flagging their callers would punish the refactor.
func sortedInFunc(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSortCall(p, call) {
			for _, arg := range call.Args {
				if mentionsObject(p, arg, obj) {
					found = true
					return false
				}
			}
			return true
		}
		// Same-package helper: resolve its declaration and check whether
		// the parameter receiving obj is itself directly sorted inside.
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.ObjectOf(id).(*types.Func)
		if !ok || fn.Pkg() != p.Pkg.Types {
			return true
		}
		decl := funcDeclOf(p, fn)
		if decl == nil {
			return true
		}
		for i, arg := range call.Args {
			if mentionsObject(p, arg, obj) && helperSortsParam(p, decl, i) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call invokes a function from package sort or
// slices (the sorting verbs all live there; a Compare/Contains false hit
// is harmless because the argument must also be the accumulated slice).
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "sort" || path == "slices"
}

// funcDeclOf finds the declaration of a same-package function, or nil.
func funcDeclOf(p *Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if p.ObjectOf(fd.Name) == fn {
				return fd
			}
		}
	}
	return nil
}

// helperSortsParam reports whether decl's argIdx-th parameter is passed
// to a direct sort/slices call in decl's body. One level deep only:
// a helper must do its own sorting, not delegate further.
func helperSortsParam(p *Pass, decl *ast.FuncDecl, argIdx int) bool {
	if decl.Body == nil || decl.Type.Params == nil {
		return false
	}
	var param types.Object
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if idx == argIdx {
				param = p.ObjectOf(name)
			}
			idx++
		}
	}
	if param == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(p, arg, param) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

package main

// Metrics-instrument checks. The observability layer's contract is
// "disabled is free": instruments are nil-safe pointers handed out by a
// registry, so a nil registry costs one branch per event. Holding an
// instrument by value defeats that (and copies its atomics); looking one
// up in a registry per loop iteration reintroduces a map+lock on the hot
// path the design explicitly avoids.

import (
	"go/ast"
	"go/types"
	"strings"
)

// metricsInstrument returns the instrument name if t is a value-typed
// metrics instrument (Counter, Gauge, Histogram) from the metrics package.
func metricsInstrument(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return "", false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return obj.Name(), true
	}
	return "", false
}

func runMetricsValue(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					t := p.TypeOf(field.Type)
					if name, ok := metricsInstrument(t); ok {
						p.Reportf(field.Pos(), "field holds metrics.%s by value; use *metrics.%s from a Registry so nil means disabled and the atomics are never copied", name, name)
					}
				}
			case *ast.ValueSpec:
				if n.Type == nil {
					return true
				}
				if name, ok := metricsInstrument(p.TypeOf(n.Type)); ok {
					p.Reportf(n.Pos(), "variable holds metrics.%s by value; use *metrics.%s from a Registry so nil means disabled and the atomics are never copied", name, name)
				}
			}
			return true
		})
	}
}

// registryLookup reports whether call is Registry.Counter/Gauge/Histogram.
func registryLookup(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
		return "Registry." + fn.Name(), true
	}
	return "", false
}

func runMetricsHotLookup(p *Pass) {
	for _, f := range p.Pkg.Files {
		seen := make(map[ast.Node]bool) // dedup calls inside nested loops
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok || seen[call] {
					return true
				}
				if name, ok := registryLookup(p, call); ok {
					seen[call] = true
					p.Reportf(call.Pos(), "%s lookup inside a loop pays a map+lock per iteration; resolve the instrument once before the loop and hold the pointer", name)
				}
				return true
			})
			return true
		})
	}
}

package main

// Golden-diagnostic tests for every analyzer plus the self-check that the
// repo itself lints clean. The module is loaded (and the stdlib
// type-checked) once and shared across all tests — that load dominates
// the suite's runtime.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	repoOnce sync.Once
	repoMod  *Module
	repoErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	repoOnce.Do(func() { repoMod, repoErr = LoadModule(".") })
	if repoErr != nil {
		t.Fatalf("load module: %v", repoErr)
	}
	return repoMod
}

// fixtureDiags loads one testdata package and formats its diagnostics the
// way the goldens store them: basename:line:col: check: message.
func fixtureDiags(t *testing.T, mod *Module, dir string, checks map[string]bool) []string {
	t.Helper()
	pkg, err := LoadFixture(mod, dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	var out []string
	for _, d := range RunAnalyzers(mod, []*Package{pkg}, checks) {
		out = append(out, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message))
	}
	return out
}

func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	return dirs
}

// TestFixtureGoldens asserts the exact diagnostic set of every fixture
// package against its expect.txt.
func TestFixtureGoldens(t *testing.T) {
	mod := loadRepo(t)
	for _, name := range fixtureDirs(t) {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			wantRaw, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			want := strings.Split(strings.TrimRight(string(wantRaw), "\n"), "\n")
			got := fixtureDiags(t, mod, dir, nil)
			if len(got) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; the corpus must trip its check", name)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s\n--- want ---\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

// TestFixturesTripOwnCheck runs each fixture with only its namesake
// analyzer enabled, proving the checks are separately runnable and that
// each fixture exercises the check it documents.
func TestFixturesTripOwnCheck(t *testing.T) {
	mod := loadRepo(t)
	for _, name := range fixtureDirs(t) {
		t.Run(name, func(t *testing.T) {
			if !knownChecks[name] {
				t.Fatalf("fixture %s does not correspond to a check", name)
			}
			got := fixtureDiags(t, mod, filepath.Join("testdata", "src", name), map[string]bool{name: true})
			matched := false
			for _, line := range got {
				if strings.Contains(line, ": "+name+": ") {
					matched = true
				} else {
					t.Errorf("with only %s enabled, unexpected diagnostic: %s", name, line)
				}
			}
			if !matched {
				t.Errorf("fixture %s produced no %s diagnostics in isolation", name, name)
			}
		})
	}
}

// TestEveryCheckHasFixture keeps the corpus complete: a new analyzer must
// ship with a fixture package.
func TestEveryCheckHasFixture(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range fixtureDirs(t) {
		have[name] = true
	}
	for _, a := range Analyzers {
		if !have[a.Name] {
			t.Errorf("check %s has no fixture package under testdata/src", a.Name)
		}
	}
}

// TestRepoSelfCheck is the gate: athena-lint reports zero findings on the
// repository itself. Every deliberate exception is expected to carry a
// //lint:allow annotation.
func TestRepoSelfCheck(t *testing.T) {
	mod := loadRepo(t)
	diags := RunAnalyzers(mod, mod.Pkgs, nil)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("athena-lint found %d violation(s) in the repo; fix them or annotate with //lint:allow <check> <reason>", len(diags))
	}
}

// TestAllowDirectiveSuppression pins the directive semantics: same line
// and line-above suppress, two lines above does not.
func TestAllowDirectiveSuppression(t *testing.T) {
	d := &allowDirective{pos: pos("f.go", 10), check: "walltime", reason: "r"}
	diagAt := func(line int) Diagnostic {
		return Diagnostic{Pos: pos("f.go", line), Check: "walltime"}
	}
	if !d.suppresses(diagAt(10)) || !d.suppresses(diagAt(11)) {
		t.Errorf("directive must cover its own line and the next")
	}
	if d.suppresses(diagAt(12)) || d.suppresses(diagAt(9)) {
		t.Errorf("directive must not cover distant lines")
	}
	other := Diagnostic{Pos: pos("f.go", 10), Check: "maporder"}
	if d.suppresses(other) {
		t.Errorf("directive must only cover its own check")
	}
}

func pos(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}

package main

// Golden-diagnostic tests for every analyzer plus the self-check that the
// repo itself lints clean. The module is loaded (and the stdlib
// type-checked) once and shared across all tests — that load dominates
// the suite's runtime.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"athena/internal/lintkit"
)

var (
	repoOnce sync.Once
	repoMod  *Module
	repoErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	repoOnce.Do(func() { repoMod, repoErr = LoadModule(".") })
	if repoErr != nil {
		t.Fatalf("load module: %v", repoErr)
	}
	return repoMod
}

// fixtureDiags loads one testdata package and formats its diagnostics the
// way the goldens store them: basename:line:col: check: message.
func fixtureDiags(t *testing.T, mod *Module, dir string, checks map[string]bool) []string {
	t.Helper()
	pkg, err := LoadFixture(mod, dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	var out []string
	for _, d := range lintkit.Unsuppressed(RunAnalyzers(mod, []*Package{pkg}, checks)) {
		out = append(out, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message))
	}
	return out
}

func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	return dirs
}

// TestFixtureGoldens asserts the exact diagnostic set of every fixture
// package against its expect.txt.
func TestFixtureGoldens(t *testing.T) {
	mod := loadRepo(t)
	for _, name := range fixtureDirs(t) {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			wantRaw, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			want := strings.Split(strings.TrimRight(string(wantRaw), "\n"), "\n")
			got := fixtureDiags(t, mod, dir, nil)
			if len(got) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; the corpus must trip its check", name)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s\n--- want ---\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

// TestFixturesTripOwnCheck runs each fixture with only its namesake
// analyzer enabled, proving the checks are separately runnable and that
// each fixture exercises the check it documents.
func TestFixturesTripOwnCheck(t *testing.T) {
	mod := loadRepo(t)
	for _, name := range fixtureDirs(t) {
		t.Run(name, func(t *testing.T) {
			if !knownChecks[name] {
				t.Fatalf("fixture %s does not correspond to a check", name)
			}
			got := fixtureDiags(t, mod, filepath.Join("testdata", "src", name), map[string]bool{name: true})
			matched := false
			for _, line := range got {
				if strings.Contains(line, ": "+name+": ") {
					matched = true
				} else {
					t.Errorf("with only %s enabled, unexpected diagnostic: %s", name, line)
				}
			}
			if !matched {
				t.Errorf("fixture %s produced no %s diagnostics in isolation", name, name)
			}
		})
	}
}

// TestEveryCheckHasFixture keeps the corpus complete: a new analyzer must
// ship with a fixture package.
func TestEveryCheckHasFixture(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range fixtureDirs(t) {
		have[name] = true
	}
	for _, a := range Analyzers {
		if !have[a.Name] {
			t.Errorf("check %s has no fixture package under testdata/src", a.Name)
		}
	}
}

// TestRepoSelfCheck is the gate: athena-lint reports zero findings on the
// repository itself. Every deliberate exception is expected to carry a
// //lint:allow annotation.
func TestRepoSelfCheck(t *testing.T) {
	mod := loadRepo(t)
	diags := lintkit.Unsuppressed(RunAnalyzers(mod, mod.Pkgs, nil))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("athena-lint found %d violation(s) in the repo; fix them or annotate with //lint:allow <check> <reason>", len(diags))
	}
}

// TestLaneReachabilityCoversHandlers guards laneshare's soundness on the
// real repo: the root scan must find handler registrations (AtCall /
// AfterCall / AfterArg) and the reachable set must pull in the node's
// message-handling core. A zero-finding lint run is only meaningful if
// this set is non-trivial.
func TestLaneReachabilityCoversHandlers(t *testing.T) {
	mod := loadRepo(t)
	g := lintkit.BuildCallGraph(mod, mod.Pkgs)
	roots := laneRoots(g, mod.Pkgs)
	if len(roots) == 0 {
		t.Fatal("no lane handler roots found in the module; laneshare and floatorder are vacuous")
	}
	reach := g.Reachable(roots)
	want := map[string]bool{"handleMessage": false, "heartbeatTick": false, "pump": false}
	for n := range reach {
		if _, tracked := want[n.Name()]; tracked {
			want[n.Name()] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("lane-reachable set misses %s; handler resolution lost the node core", name)
		}
	}
}

// TestInferredLockGraphMatchesDeclaredOrder pins the lockorder
// inference on the real repo: the inferred acquisition graph must be
// non-empty (the hot locks really do nest), acyclic, and every edge
// within a declared chain must run in declared order — the assertion
// that the hand-written table and reality agree.
func TestInferredLockGraphMatchesDeclaredOrder(t *testing.T) {
	mod := loadRepo(t)
	g := lintkit.BuildCallGraph(mod, mod.Pkgs)
	lg := lintkit.BuildLockGraph(g, hotLockOwner)
	if len(lg.Edges) == 0 {
		t.Fatal("inferred lock graph has no edges; the inference lost the nested acquisitions")
	}
	for _, e := range lg.Edges {
		from, to := hotLockRank[e.From], hotLockRank[e.To]
		if from.chain == to.chain && from.rank > to.rank {
			t.Errorf("inferred edge %s -> %s (in %s) inverts the declared order", e.From, e.To, e.FuncName)
		}
	}
	if cycles := lg.Cycles(); len(cycles) > 0 {
		for _, c := range cycles {
			t.Errorf("inferred lock cycle: %s", strings.Join(c.Classes, " -> "))
		}
	}
}

package main

// Dropped-error check. Transport sends and wire encode/decode are the
// places where a silently swallowed error becomes a silently lost message
// — the exact failure mode the retry and membership layers exist to
// surface. Discarding their error returns (bare call statements or
// assignment to _) is flagged; a deliberate best-effort send carries a
// //lint:allow droppederr with its justification.

import (
	"go/ast"
	"go/types"
	"strings"
)

// erringCallee resolves a call to a *types.Func whose last result is an
// error, or nil.
func erringCallee(p *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return nil
	}
	return fn
}

// guardedCallee reports whether fn's error must not be discarded: anything
// from internal/transport (sends, peer management), and the gob/json
// encode/decode methods that frame the wire messages.
func guardedCallee(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if strings.HasSuffix(pkg.Path(), "internal/transport") {
		return "transport." + fn.Name(), true
	}
	switch pkg.Path() {
	case "encoding/gob", "encoding/json":
		switch fn.Name() {
		case "Encode", "Decode", "EncodeValue", "DecodeValue", "Marshal", "Unmarshal":
			return pkg.Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

func runDroppedErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := erringCallee(p, call)
				if fn == nil {
					return true
				}
				if name, guarded := guardedCallee(fn); guarded {
					p.Reportf(n.Pos(), "%s error discarded; a dropped send or frame is a lost message — handle it, count it, or //lint:allow droppederr with the best-effort rationale", name)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					fn := erringCallee(p, call)
					if fn == nil {
						continue
					}
					name, guarded := guardedCallee(fn)
					if !guarded {
						continue
					}
					// Multi-value: the error is the last LHS; single call on
					// the RHS means LHS slots map to the call's results.
					var errLHS ast.Expr
					if len(n.Rhs) == 1 {
						errLHS = n.Lhs[len(n.Lhs)-1]
					} else if i < len(n.Lhs) {
						errLHS = n.Lhs[i]
					}
					if id, ok := errLHS.(*ast.Ident); ok && id.Name == "_" {
						p.Reportf(rhs.Pos(), "%s error assigned to _; a dropped send or frame is a lost message — handle it, count it, or //lint:allow droppederr with the best-effort rationale", name)
					}
				}
			}
			return true
		})
	}
}

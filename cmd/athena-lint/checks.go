package main

// The check registry and the repo policy the checks share: which
// packages are simulation-scoped, which files are wall-clock boundaries,
// and which lock classes are "hot". The analysis machinery itself —
// module loading, the call graph, the lock-acquisition graph, and the
// //lint:allow suppression flow — lives in internal/lintkit.

import (
	"go/ast"
	"go/token"
	"path/filepath"

	"athena/internal/lintkit"
)

// The framework types and loaders, aliased so the checks read naturally.
type (
	Pass       = lintkit.Pass
	Diagnostic = lintkit.Diagnostic
	Analyzer   = lintkit.Analyzer
	Module     = lintkit.Module
	Package    = lintkit.Package
)

var (
	LoadModule  = lintkit.LoadModule
	LoadFixture = lintkit.LoadFixture
)

// Analyzers is the full check set, in reporting order.
var Analyzers = []*Analyzer{
	{Name: "walltime", Doc: "no wall-clock time (time.Now/Since/After/...) outside the designated boundary files; deterministic code threads a simclock.Clock", Run: runWalltime},
	{Name: "globalrand", Doc: "no global math/rand top-level functions outside boundary files; randomness comes from a seeded *rand.Rand", Run: runGlobalRand},
	{Name: "maporder", Doc: "no map-iteration-order-dependent output (prints or unsorted slice accumulation inside a map range) in simulation-reachable packages", Run: runMapOrder},
	{Name: "lockcopy", Doc: "no copying of values containing sync or atomic state in assignments, returns, or range statements", Run: runLockCopy},
	{Name: "lockheld", Doc: "every mutex Lock/RLock has a same-function Unlock/RUnlock (deferred or direct)", Run: runLockHeld},
	{Name: "lockorder", Doc: "the inferred lock-acquisition graph (direct and through calls) must be acyclic and reproduce the declared order (Node < ShardRouter < Directory < InterestTable; tcpPeer < TCPTransport)", Run: runLockOrder},
	{Name: "metricsvalue", Doc: "metrics instruments are held as pointers (*metrics.Counter, ...) so a nil registry stays a no-op; value-typed fields defeat that contract", Run: runMetricsValue},
	{Name: "metricshotlookup", Doc: "no Registry.Counter/Gauge/Histogram lookups inside loops; resolve instruments once and hold the pointer", Run: runMetricsHotLookup},
	{Name: "golifetime", Doc: "goroutines launched in non-test code must be tied to a stop channel, context, WaitGroup, or a deferred Close of something they use", Run: runGoLifetime},
	{Name: "droppederr", Doc: "error returns from internal/transport and encode/decode calls must not be discarded", Run: runDroppedErr},
	{Name: "gobuse", Doc: "no encoding/gob imports; messages are framed by the explicit binary codec in internal/wire, whose sizes the bandwidth model prices", Run: runGobUse},
	{Name: "wiresize", Doc: "send helpers (sendTo/sendToPri/floodCtl) must price the frame with payload.WireSize(); anything else decouples the bandwidth model from the encoded bytes", Run: runWireSize},
	{Name: "laneshare", Doc: "code reachable from kernel lane handlers (AtCall/AfterCall/AfterArg) must not write package-level vars or another instance's state outside a mailbox post or a held mutex", Run: runLaneShare},
	{Name: "floatorder", Doc: "no float accumulation (+=, x = x + v) inside a map range in lane-reachable code; map order makes the rounding, and the run, irreproducible", Run: runFloatOrder},
	{Name: "wireproto", Doc: "every registered wire type ID has an appendPayload/readPayload/typeID case, a WireSize method, a fuzz target, a round-trip test construction, and a handleMessage dispatch case", Run: runWireProto},
	{Name: lintkit.DirectiveCheck, Doc: "//lint:allow directives are well-formed (known check, non-empty reason) and actually suppress something", Run: nil}, // enforced by the runner
}

func analyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

var knownChecks = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers {
		m[a.Name] = true
	}
	return m
}()

// RunAnalyzers runs the selected checks (nil = all) over the packages,
// returning every diagnostic with suppressed findings marked (filter
// with lintkit.Unsuppressed for exit-status semantics).
func RunAnalyzers(mod *Module, pkgs []*Package, checks map[string]bool) []Diagnostic {
	return lintkit.RunAnalyzers(mod, pkgs, Analyzers, checks)
}

// mutexMethod decodes a call of the form X.Lock()/X.Unlock()/X.RLock()/
// X.RUnlock() where X is a sync.Mutex or sync.RWMutex.
func mutexMethod(p *Pass, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	return lintkit.MutexMethod(p.Pkg, call)
}

// --- scoping ---------------------------------------------------------------

// boundaryFile reports whether the file holding pos is one of the
// designated wall-clock boundary files, where real time and process-wide
// randomness are legal: internal/simclock (the clock abstraction itself),
// internal/athena/wall.go (real-time Timers), internal/transport (real
// sockets, real backoff), and cmd/athenad (the real-time daemon).
func boundaryFile(p *Pass, pos token.Pos) bool {
	if p.Pkg.Fixture {
		return false
	}
	switch p.PkgRel() {
	case "internal/simclock", "internal/transport", "cmd/athenad":
		return true
	case "internal/athena":
		return filepath.Base(p.Mod.Fset.Position(pos).Filename) == "wall.go"
	}
	return false
}

// simScoped reports whether the package is simulation-reachable: the
// packages whose behaviour must be a pure function of the seed because
// the figures and ablation tables are computed from them.
func simScoped(p *Pass) bool {
	if p.Pkg.Fixture {
		return true
	}
	switch p.PkgRel() {
	case "", // root package: schemes, simnet glue
		"internal/netsim",
		"internal/schedule",
		"internal/experiment",
		"internal/workload",
		"internal/gossip",
		"internal/athena":
		return true
	}
	return false
}

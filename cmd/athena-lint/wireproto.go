package main

// Wire-protocol exhaustiveness check. Adding a message type to the wire
// codec takes seven coordinated edits; forgetting any one of them
// compiles fine and fails at a distance — frames that won't decode, a
// bandwidth model that can't price the message, a handler that silently
// drops it, or a fuzz/golden hole that lets the layout drift. This
// check cross-references the registered Type* constants against every
// artifact the protocol contract requires: the typeID mapping, the
// appendPayload and readPayload codec cases, a WireSize method on the
// message struct, a Fuzz<Name> round-trip target and a test
// construction of the struct in the package's _test.go files (parsed
// separately — test files are not part of the loaded package), and a
// dispatch case in the transport's handleMessage type switch (which is
// also where batching/relay frames fan back into the node).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// wireArtifacts is everything the protocol contract cross-references,
// keyed by message name (the Type constant minus its prefix).
type wireArtifacts struct {
	typeID    map[string]bool // `return TypeX` in func typeID
	appendPay map[string]bool // type-switch case in func appendPayload
	readPay   map[string]bool // `case TypeX` in func readPayload
	wireSize  map[string]bool // WireSize method receiver base types
	fuzz      map[string]bool // FuzzX declarations in _test.go files
	built     map[string]bool // X{...} composite literals in _test.go files
	dispatch  map[string]bool // handleMessage type-switch case types
}

func runWireProto(p *Pass) {
	consts := wireTypeConsts(p)
	if len(consts) == 0 {
		return
	}
	art := collectWireArtifacts(p)
	for _, c := range consts {
		name := strings.TrimPrefix(c.Name, "Type")
		missing := func(format string, args ...any) {
			p.Reportf(c.Pos(), format, args...)
		}
		if !art.typeID[name] {
			missing("wire type %s: typeID maps no payload to it; the codec cannot encode %s frames", c.Name, name)
		}
		if !art.appendPay[name] {
			missing("wire type %s: appendPayload has no case for %s; encoding it fails at runtime", c.Name, name)
		}
		if !art.readPay[name] {
			missing("wire type %s: readPayload has no case for it; received %s frames fail to decode", c.Name, name)
		}
		if !art.wireSize[name] {
			missing("wire type %s: %s has no WireSize method; the bandwidth model cannot price the frame", c.Name, name)
		}
		if !art.fuzz["Fuzz"+name] {
			missing("wire type %s: no Fuzz%s round-trip target in the package tests; the layout can drift unnoticed", c.Name, name)
		}
		if !art.built[name] {
			missing("wire type %s: the package tests never construct %s; golden/round-trip coverage is missing", c.Name, name)
		}
		if !art.dispatch[name] {
			missing("wire type %s: no handleMessage dispatch case for %s; delivered frames are silently dropped", c.Name, name)
		}
	}
}

// wireTypeConsts finds the registered wire type constants — a const
// block declaring two or more Type*-named constants — in a package that
// also defines the codec's typeID or readPayload function. Matched
// structurally so the fixture can model a miniature codec.
func wireTypeConsts(p *Pass) []*ast.Ident {
	hasCodec := false
	var consts []*ast.Ident
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && (d.Name.Name == "typeID" || d.Name.Name == "readPayload") {
					hasCodec = true
				}
			case *ast.GenDecl:
				if d.Tok != token.CONST {
					continue
				}
				var block []*ast.Ident
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Type") && len(name.Name) > len("Type") {
							block = append(block, name)
						}
					}
				}
				if len(block) >= 2 {
					consts = append(consts, block...)
				}
			}
		}
	}
	if !hasCodec {
		return nil
	}
	return consts
}

// collectWireArtifacts gathers the protocol artifacts: codec cases from
// the pass's package, WireSize methods and handleMessage dispatch cases
// from every package in the session, and fuzz targets plus test
// constructions from the package directory's _test.go files.
func collectWireArtifacts(p *Pass) *wireArtifacts {
	art := &wireArtifacts{
		typeID:    make(map[string]bool),
		appendPay: make(map[string]bool),
		readPay:   make(map[string]bool),
		wireSize:  make(map[string]bool),
		fuzz:      make(map[string]bool),
		built:     make(map[string]bool),
		dispatch:  make(map[string]bool),
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			switch fd.Name.Name {
			case "typeID", "readPayload":
				// Both reference the Type constants by name: returns in
				// typeID, case expressions in readPayload.
				sink := art.typeID
				if fd.Name.Name == "readPayload" {
					sink = art.readPay
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(id.Name, "Type") {
						sink[strings.TrimPrefix(id.Name, "Type")] = true
					}
					return true
				})
			case "appendPayload":
				collectTypeSwitchCases(fd.Body, art.appendPay)
			}
		}
	}
	for _, pkg := range sessionPkgs(p) {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Name.Name == "WireSize" && fd.Recv != nil && len(fd.Recv.List) > 0 {
					if name := baseTypeName(fd.Recv.List[0].Type); name != "" {
						art.wireSize[name] = true
					}
				}
				if fd.Name.Name == "handleMessage" {
					collectTypeSwitchCases(fd.Body, art.dispatch)
				}
			}
		}
	}
	collectWireTests(p.Pkg.Dir, art)
	return art
}

// collectTypeSwitchCases records the base type name of every case in
// every type switch under root.
func collectTypeSwitchCases(root ast.Node, sink map[string]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range ts.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				if name := baseTypeName(expr); name != "" {
					sink[name] = true
				}
			}
		}
		return true
	})
}

// collectWireTests parses the package directory's _test.go files (which
// LoadModule deliberately excludes) for fuzz targets and composite-
// literal constructions of the message structs.
func collectWireTests(dir string, art *wireArtifacts) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				art.fuzz[fd.Name.Name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || cl.Type == nil {
				return true
			}
			if name := baseTypeName(cl.Type); name != "" {
				art.built[name] = true
			}
			return true
		})
	}
}

// baseTypeName strips pointers, parens, and package qualifiers off a
// type expression: *athena.Heartbeat -> Heartbeat.
func baseTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

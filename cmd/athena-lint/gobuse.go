package main

// Gob-use check. The wire format is the hand-rolled, length-prefixed
// codec in internal/wire: every message has an explicit binary layout,
// pinned by golden-bytes tests and versioned by a frame byte. A stray
// encoding/gob import reintroduces a second, self-describing encoding
// whose frames nothing else can parse and whose sizes the bandwidth
// model cannot price, so any gob import in the module is a violation.

import "strconv"

func runGobUse(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "encoding/gob" {
				continue
			}
			p.Reportf(imp.Pos(), "encoding/gob import forbidden; messages are framed by the explicit codec in internal/wire — extend wire.Codec instead of reaching for gob")
		}
	}
}

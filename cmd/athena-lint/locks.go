package main

// Lock-discipline checks: no copying of lock- or atomic-bearing values,
// every Lock paired with a same-function Unlock, and nested acquisition of
// the known hot locks in canonical order. The membership layer's
// correctness under -race depends on these holding everywhere, not just in
// the packages the race job happens to exercise.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"athena/internal/lintkit"
)

// containsLockState reports whether t (by value) embeds sync or
// sync/atomic state, which must never be copied once in use. The metrics
// instruments are caught transitively through their atomic fields.
func containsLockState(t types.Type) string {
	return lockStateIn(t, make(map[types.Type]bool))
}

func lockStateIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return "atomic." + obj.Name()
				}
			}
		}
		return lockStateIn(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := lockStateIn(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockStateIn(u.Elem(), seen)
	}
	return ""
}

// copySource reports whether e denotes existing storage (a variable,
// field, element, or dereference) whose copy would duplicate lock state.
// Fresh composite literals and call results are initialisations, not
// copies.
func copySource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copySource(e.X)
	}
	return false
}

func runLockCopy(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if !copySource(rhs) {
						continue
					}
					if s := containsLockState(p.TypeOf(rhs)); s != "" {
						p.Reportf(rhs.Pos(), "assignment copies %s, which contains %s; share a pointer instead", p.Render(rhs), s)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if !copySource(res) {
						continue
					}
					if s := containsLockState(p.TypeOf(res)); s != "" {
						p.Reportf(res.Pos(), "return copies %s, which contains %s; return a pointer instead", p.Render(res), s)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if s := containsLockState(p.TypeOf(n.Value)); s != "" {
					p.Reportf(n.Value.Pos(), "range copies each element into %s, which contains %s; range over indices or pointers instead", p.Render(n.Value), s)
				}
			}
			return true
		})
	}
}

// lockUse tallies one guarded expression's acquire/release calls within a
// function.
type lockUse struct {
	lockPos, rlockPos ast.Node
	unlock, runlock   bool
}

func runLockHeld(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Lock-wrapper methods legitimately acquire without releasing.
			switch fd.Name.Name {
			case "Lock", "Unlock", "RLock", "RUnlock":
				continue
			}
			uses := make(map[string]*lockUse)
			order := []string{}
			use := func(key string) *lockUse {
				u, ok := uses[key]
				if !ok {
					u = &lockUse{}
					uses[key] = u
					order = append(order, key)
				}
				return u
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, recv, ok := mutexMethod(p, call)
				if !ok {
					return true
				}
				u := use(p.Render(recv))
				switch method {
				case "Lock", "TryLock":
					if u.lockPos == nil {
						u.lockPos = call
					}
				case "RLock", "TryRLock":
					if u.rlockPos == nil {
						u.rlockPos = call
					}
				case "Unlock":
					u.unlock = true
				case "RUnlock":
					u.runlock = true
				}
				return true
			})
			for _, key := range order {
				u := uses[key]
				if u.lockPos != nil && !u.unlock {
					p.Reportf(u.lockPos.Pos(), "%s.Lock() with no %s.Unlock() in %s; release in the same function (defer preferred) or //lint:allow lockheld for a lock handoff", key, key, fd.Name.Name)
				}
				if u.rlockPos != nil && !u.runlock {
					p.Reportf(u.rlockPos.Pos(), "%s.RLock() with no %s.RUnlock() in %s; release in the same function (defer preferred) or //lint:allow lockheld for a lock handoff", key, key, fd.Name.Name)
				}
			}
		}
	}
}

// hotLockRank assigns the canonical acquisition order of the named hot
// locks. Lower ranks are acquired first; acquiring a lower rank while
// holding a higher one within the same chain is an inversion. Types are
// matched by name so the fixture corpus can model them without importing
// unexported state.
var hotLockRank = map[string]struct {
	chain string
	rank  int
}{
	"Node":          {"athena", 0}, // membership state lives under Node.mu
	"ShardRouter":   {"athena", 1}, // routed-lookup state; called from under Node.mu
	"Directory":     {"athena", 2},
	"InterestTable": {"athena", 3},
	"tcpPeer":       {"transport", 0},
	"TCPTransport":  {"transport", 1},
}

var hotLockOrder = map[string]string{
	"athena":    "Node < ShardRouter < Directory < InterestTable",
	"transport": "tcpPeer < TCPTransport",
}

// hotLockOwner names the hot-lock type guarding expressions like n.mu:
// the type of the receiver the mutex field hangs off.
func hotLockOwner(pkg *Package, recv ast.Expr) (string, bool) {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := pkg.Info.TypeOf(sel.X)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	if _, hot := hotLockRank[name]; !hot || !hasMutexField(named) {
		return "", false
	}
	return name, true
}

// hotLockGraph builds (once per session) the inferred acquisition-order
// graph over the hot lock classes: the held-set walk of every function
// plus transitive acquisitions propagated through the call graph.
func hotLockGraph(p *Pass) *lintkit.LockGraph {
	const key = "lockorder.graph"
	if lg, ok := p.Session.Cache[key].(*lintkit.LockGraph); ok {
		return lg
	}
	lg := lintkit.BuildLockGraph(p.Session.Graph(), hotLockOwner)
	p.Session.Cache[key] = lg
	return lg
}

// runLockOrder checks the inferred lock-acquisition graph against the
// declared hotLockRank order — every observed edge within a chain must
// run low rank -> high rank — and requires the graph to be acyclic
// overall, which also catches inversions the declared table never
// anticipated (cross-chain cycles). Each offending (held, acquired)
// class pair is reported once, at its first witness site; edges observed
// through a call name the callee that takes the inner lock.
func runLockOrder(p *Pass) {
	lg := hotLockGraph(p)
	inPkg := func(pos token.Pos) bool {
		return filepath.Dir(p.Mod.Fset.Position(pos).Filename) == p.Pkg.Dir
	}
	for _, e := range lg.Edges {
		if !inPkg(e.Pos) {
			continue
		}
		from, to := hotLockRank[e.From], hotLockRank[e.To]
		if from.chain != to.chain || from.rank <= to.rank {
			continue
		}
		if e.Via != "" {
			p.Reportf(e.Pos, "call to %s acquires %s lock while holding %s lock; canonical order is %s", e.Via, e.To, e.From, hotLockOrder[to.chain])
			continue
		}
		p.Reportf(e.Pos, "acquires %s lock while holding %s lock; canonical order is %s", e.To, e.From, hotLockOrder[to.chain])
	}
	for _, c := range lg.Cycles() {
		if !inPkg(c.Edges[0].Pos) {
			continue
		}
		// A cycle containing a declared-order inversion is implied by that
		// inversion and already reported above with the sharper message;
		// cycles earn their own report only when every edge looks locally
		// legal (cross-chain loops the declared table never related).
		inverted := false
		for _, e := range c.Edges {
			from, to := hotLockRank[e.From], hotLockRank[e.To]
			if from.chain == to.chain && from.rank > to.rank {
				inverted = true
				break
			}
		}
		if inverted {
			continue
		}
		p.Reportf(c.Edges[0].Pos, "inferred lock-acquisition cycle: %s -> %s; some thread interleaving deadlocks", strings.Join(c.Classes, " -> "), c.Classes[0])
	}
}

// hasMutexField keeps the name-based hot-lock table honest: fixtures
// reuse the real type names, so guard against accidental matches in
// unrelated packages by requiring the type to actually carry a mutex
// field.
func hasMutexField(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if n, ok := ft.(*types.Named); ok && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" && strings.HasSuffix(n.Obj().Name(), "Mutex") {
			return true
		}
	}
	return false
}

package main

// Float-accumulation-order check. Floating-point addition is not
// associative, so a sum folded in map-iteration order is a different
// float64 each run — the classic silent determinism killer: every
// decision threshold downstream of the sum can flip, and the byte-diff
// job only catches it when the flip happens to land in CI. In
// lane-reachable code (the set the laneshare analysis computes) any
// `x += v` or `x = x + v` with float operands inside a map range is
// flagged; iterate sorted keys, or collect into a slice and sum after
// sorting, and the rounding is pinned.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runFloatOrder(p *Pass) {
	if !simScoped(p) {
		return
	}
	reach := laneReachable(p)
	for _, n := range p.Session.Graph().Nodes() {
		if n.Pkg != p.Pkg || !reach[n] || n.Body() == nil {
			continue
		}
		if boundaryFile(p, n.Pos()) {
			continue
		}
		seen := make(map[ast.Node]bool) // dedup sinks under nested map ranges
		ast.Inspect(n.Body(), func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
				return false // nested literals are their own nodes
			}
			rs, ok := node.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := p.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkFloatAccum(p, rs, seen)
			return true
		})
	}
}

// checkFloatAccum flags float accumulation statements in one map-range
// body.
func checkFloatAccum(p *Pass, rs *ast.RangeStmt, seen map[ast.Node]bool) {
	ast.Inspect(rs.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || seen[as] || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(p.TypeOf(lhs)) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			seen[as] = true
			p.Reportf(as.Pos(), "float accumulation into %s inside a map range; addition order changes the rounding, so the run stops replaying from its seed — iterate sorted keys or sum a sorted slice", p.Render(lhs))
		case token.ASSIGN:
			// x = x + v (or v + x, or x - v) is the same fold spelled out.
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.ADD, token.SUB:
			default:
				return true
			}
			want := p.Render(lhs)
			if p.Render(bin.X) == want || p.Render(bin.Y) == want {
				seen[as] = true
				p.Reportf(as.Pos(), "float accumulation into %s inside a map range; addition order changes the rounding, so the run stops replaying from its seed — iterate sorted keys or sum a sorted slice", want)
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// Command athena-lint is the repo's static-invariant gate: a pure-stdlib
// (go/ast, go/parser, go/types, go/token) multi-analyzer linter that loads
// every package in the module and enforces the determinism,
// lock-discipline, instrumentation, goroutine-lifecycle, and error-
// handling rules the reproduction's figures depend on. See DESIGN.md
// §"Static invariants" for the full rule list and the //lint:allow escape
// hatch.
//
// Usage:
//
//	athena-lint [-checks c1,c2] [-list] [dir]
//
// With no dir (or a module dir / "./..."), every package in the
// surrounding module is analyzed. Pointing it at a testdata fixture
// directory analyzes just that fixture package against the module. Exit
// status: 0 clean, 1 findings, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	var checks map[string]bool
	if *checksFlag != "" {
		checks = make(map[string]bool)
		for _, c := range strings.Split(*checksFlag, ",") {
			c = strings.TrimSpace(c)
			if !knownChecks[c] {
				fmt.Fprintf(os.Stderr, "athena-lint: unknown check %q (use -list)\n", c)
				os.Exit(2)
			}
			checks[c] = true
		}
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		if dir == "" {
			dir = "."
		}
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "athena-lint: at most one directory argument")
		os.Exit(2)
	}

	diags, err := run(dir, checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "athena-lint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "athena-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// run loads and analyzes either the whole module containing dir or, for a
// path under a testdata tree, that single fixture package.
func run(dir string, checks map[string]bool) ([]Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fixture := strings.Contains(abs, string(filepath.Separator)+"testdata"+string(filepath.Separator)) ||
		filepath.Base(abs) == "testdata"
	if fixture {
		mod, err := LoadModule(".")
		if err != nil {
			return nil, err
		}
		pkg, err := LoadFixture(mod, abs)
		if err != nil {
			return nil, err
		}
		return RunAnalyzers(mod, []*Package{pkg}, checks), nil
	}
	mod, err := LoadModule(abs)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(mod, mod.Pkgs, checks), nil
}

// Command athena-lint is the repo's static-invariant gate: a pure-stdlib
// (go/ast, go/parser, go/types, go/token) multi-analyzer linter that loads
// every package in the module and enforces the determinism,
// lock-discipline, instrumentation, goroutine-lifecycle, and error-
// handling rules the reproduction's figures depend on. See DESIGN.md
// §"Static invariants" for the full rule list and the //lint:allow escape
// hatch.
//
// Usage:
//
//	athena-lint [-checks c1,c2] [-json] [-list] [dir]
//
// With no dir (or a module dir / "./..."), every package in the
// surrounding module is analyzed. Pointing it at a testdata fixture
// directory analyzes just that fixture package against the module. Exit
// status: 0 clean, 1 findings, 2 load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"athena/internal/lintkit"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (suppressed findings included, marked)")
	flag.Parse()

	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	var checks map[string]bool
	if *checksFlag != "" {
		checks = make(map[string]bool)
		for _, c := range strings.Split(*checksFlag, ",") {
			c = strings.TrimSpace(c)
			if !knownChecks[c] {
				fmt.Fprintf(os.Stderr, "athena-lint: unknown check %q (use -list)\n", c)
				os.Exit(2)
			}
			checks[c] = true
		}
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		if dir == "" {
			dir = "."
		}
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "athena-lint: at most one directory argument")
		os.Exit(2)
	}

	diags, err := run(dir, checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "athena-lint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}
	visible := lintkit.Unsuppressed(diags)
	if *jsonOut {
		type jsonDiag struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Column     int    `json:"column"`
			Check      string `json:"check"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:       relName(d.Pos.Filename),
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Check:      d.Check,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "athena-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range visible {
			fmt.Printf("%s:%d:%d: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(visible) > 0 {
		fmt.Fprintf(os.Stderr, "athena-lint: %d finding(s)\n", len(visible))
		os.Exit(1)
	}
}

// run loads and analyzes either the whole module containing dir or, for a
// path under a testdata tree, that single fixture package.
func run(dir string, checks map[string]bool) ([]Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fixture := strings.Contains(abs, string(filepath.Separator)+"testdata"+string(filepath.Separator)) ||
		filepath.Base(abs) == "testdata"
	if fixture {
		mod, err := LoadModule(".")
		if err != nil {
			return nil, err
		}
		pkg, err := LoadFixture(mod, abs)
		if err != nil {
			return nil, err
		}
		return RunAnalyzers(mod, []*Package{pkg}, checks), nil
	}
	mod, err := LoadModule(abs)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(mod, mod.Pkgs, checks), nil
}

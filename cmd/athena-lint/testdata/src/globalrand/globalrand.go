// Package globalrand is a fixture corpus for the globalrand check:
// process-global math/rand functions versus seeded sources.
package globalrand

import "math/rand"

// Roll draws from the global source: violation.
func Roll() int {
	return rand.Intn(6)
}

// Mix shuffles with the global source: violation.
func Mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Seeded uses an explicit source: fine.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Package floatorder is the fixture corpus for the floatorder check:
// float accumulation inside map ranges in lane-reachable code. Go
// randomizes map iteration order and float addition does not commute in
// rounding, so these folds change the run's bytes from seed to seed —
// unlike the integer and sorted-key shapes, which stay exact.
package floatorder

import "sort"

// Sched is a miniature scheduler façade; AfterArg is a kernel entry
// point, so the registered handlers below are lane-reachable.
type Sched struct{ now int64 }

// AfterArg registers fn(arg) after a relative delay.
func (s *Sched) AfterArg(d int64, fn func(any), arg any) {
	_ = d
	_ = fn
	_ = arg
}

// agg aggregates per-key utility samples on a lane.
type agg struct {
	byKey map[string]float64
	total float64
	trace float64
	count int
}

// Wire registers the handlers.
func Wire(s *Sched, a *agg) {
	s.AfterArg(1, a.onSample, nil)
	s.AfterArg(2, a.onMerge, nil)
	s.AfterArg(3, a.onDecay, nil)
	s.AfterArg(4, a.onCount, nil)
	s.AfterArg(5, a.onSorted, nil)
	s.AfterArg(6, a.onDebug, nil)
}

// onSample folds the samples in map order with +=.
func (a *agg) onSample(any) {
	for _, v := range a.byKey {
		a.total += v
	}
}

// onMerge spells the same fold as x = x + v.
func (a *agg) onMerge(any) {
	sum := 0.0
	for _, v := range a.byKey {
		sum = sum + v
	}
	a.total = sum
}

// onDecay subtracts in map order; -= rounds order-dependently too.
func (a *agg) onDecay(any) {
	for _, v := range a.byKey {
		a.total -= v
	}
}

// onCount accumulates an int — exact arithmetic commutes, so iteration
// order cannot change the result.
func (a *agg) onCount(any) {
	n := 0
	for range a.byKey {
		n++
	}
	a.count = n
}

// onSorted is the fix: collect the keys, sort, fold in canonical order.
func (a *agg) onSorted(any) {
	keys := make([]string, 0, len(a.byKey))
	for k := range a.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a.total += a.byKey[k]
	}
}

// onDebug feeds a log-only aggregate that never reaches a decision; the
// exception is deliberate and annotated.
func (a *agg) onDebug(any) {
	for _, v := range a.byKey {
		a.trace += v //lint:allow floatorder log-only aggregate, never feeds a decision
	}
}

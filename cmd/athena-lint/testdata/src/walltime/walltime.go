// Package walltime is a fixture corpus for the walltime check: wall-clock
// reads outside the boundary files.
package walltime

import "time"

// Deadline reads the wall clock: violation.
func Deadline() time.Time {
	return time.Now().Add(time.Second)
}

// Wait sleeps on real time: violation.
func Wait() {
	time.Sleep(10 * time.Millisecond)
}

// Compare uses time.Time methods only: fine.
func Compare(a, b time.Time) bool {
	return a.After(b) && !a.Before(b.Add(time.Minute))
}

// Allowed demonstrates the escape hatch: suppressed.
func Allowed() time.Time {
	//lint:allow walltime fixture demonstrates the escape hatch
	return time.Now()
}

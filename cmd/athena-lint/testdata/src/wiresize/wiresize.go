// Package wiresize is a fixture corpus for the wiresize check: the size
// argument of sendTo/sendToPri/floodCtl must be WireSize() of the very
// payload being sent, so the bandwidth model prices exactly the encoded
// frame.
package wiresize

// Msg stands in for a wire message.
type Msg struct{ Body []byte }

// WireSize mimics the codec's exact framing cost.
func (m *Msg) WireSize() int64 { return int64(16 + len(m.Body)) }

// Node stands in for the athena node's send surface.
type Node struct{}

func (n *Node) sendTo(dest string, size int64, payload any)             {}
func (n *Node) sendToPri(dest string, size int64, payload any, pri int) {}
func (n *Node) floodCtl(size int64, payload any, except string)         {}
func (n *Node) sendVia(dest string, size int64, payload any, gossip bool) {
	n.sendTo(dest, size, payload)
}
func (n *Node) sendWrong(dest string, size int64, payload any, other *Msg) {
	n.sendTo(dest, other.WireSize(), payload)
}

// Good prices every frame with the payload's own WireSize.
func (n *Node) Good(dest string, m *Msg) {
	n.sendTo(dest, m.WireSize(), m)
	n.sendToPri(dest, m.WireSize(), m, 1)
	n.floodCtl(m.WireSize(), m, "")
	v := Msg{}
	n.sendTo(dest, v.WireSize(), &v)
}

// BadLiteral hardcodes a size: violation.
func (n *Node) BadLiteral(dest string, m *Msg) {
	n.sendTo(dest, 64, m)
}

// BadStale prices the frame with a size captured before the message was
// mutated: violation (the variable is not payload.WireSize()).
func (n *Node) BadStale(dest string, m *Msg) {
	size := m.WireSize()
	m.Body = append(m.Body, 0)
	n.sendTo(dest, size, m)
}

// BadOther prices one message with another's size: violation.
func (n *Node) BadOther(dest string, a, b *Msg) {
	n.sendToPri(dest, a.WireSize(), b, 0)
}

// BadFlood arithmetic on top of WireSize is still a violation: the codec
// already charges the whole frame.
func (n *Node) BadFlood(m *Msg) {
	n.floodCtl(m.WireSize()+8, m, "")
}

// Package lockcopy is a fixture corpus for the lockcopy check: copying
// values that contain sync or atomic state.
package lockcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot copies the struct (and its mutex) twice: assignment and
// return, both violations.
func Snapshot(g *guarded) guarded {
	snap := *g
	return snap
}

// Iterate copies each element into the range variable: violation.
func Iterate(gs []guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// ByPointer shares instead of copying: fine.
func ByPointer(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

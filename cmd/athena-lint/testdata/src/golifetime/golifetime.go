// Package golifetime is a fixture corpus for the golifetime check:
// goroutines with no visible stop signal.
package golifetime

import (
	"context"
	"sync"
)

var sink int

// Leaky launches a goroutine nothing can stop: violation.
func Leaky(jobs []int) {
	go func() {
		for i := range jobs {
			sink += jobs[i]
		}
	}()
}

// WithContext ties the goroutine to ctx: fine.
func WithContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// WithWaitGroup ties the goroutine to a WaitGroup: fine.
func WithWaitGroup(wg *sync.WaitGroup, jobs []int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range jobs {
			sink += jobs[i]
		}
	}()
}

// DrainsChannel ends when the channel closes: fine.
func DrainsChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			sink += j
		}
	}()
}

// Named launches a method whose body watches a stop channel: fine.
type worker struct {
	stop chan struct{}
}

func (w *worker) loop() {
	<-w.stop
}

func (w *worker) Start() {
	go w.loop()
}

// Package metricsvalue is a fixture corpus for the metricsvalue check:
// instruments held by value instead of as nil-safe pointers.
package metricsvalue

import "athena/internal/metrics"

// statsBad embeds an instrument by value: violation.
type statsBad struct {
	hits metrics.Counter
}

// statsGood holds the nil-safe pointer a Registry hands out: fine.
type statsGood struct {
	hits *metrics.Counter
}

// liveGauge is a value-typed instrument variable: violation.
var liveGauge metrics.Gauge

// Touch keeps the fixture types referenced.
func Touch(b *statsBad, g *statsGood) {
	b.hits.Inc()
	g.hits.Inc()
	liveGauge.Set(1)
}

// Package maporder is a fixture corpus for the maporder check:
// map-iteration-order-dependent output.
package maporder

import (
	"fmt"
	"sort"
)

// PrintAll emits in map order: violation.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Keys collects then sorts: fine.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Unsorted leaks map order through the returned slice: violation.
func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Concat builds a string in map order: violation.
func Concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// Sum aggregates commutatively: fine.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// HelperSorted accumulates in map order but hands the slice to a
// same-package helper that sorts it: fine.
func HelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// HelperUnsorted passes the slice to a helper that merely measures it;
// the map order still leaks: violation.
func HelperUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	measure(out)
	return out
}

// sortStrings is the factored-out ordering contract.
func sortStrings(s []string) {
	sort.Strings(s)
}

// measure does not sort its argument.
func measure(s []string) int {
	return len(s)
}

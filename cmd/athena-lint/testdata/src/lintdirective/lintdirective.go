// Package lintdirective is a fixture corpus for the lintdirective check:
// malformed and unused //lint:allow comments.
package lintdirective

import "time"

// Used demonstrates a well-formed, effective allow: only the directive's
// target is suppressed.
func Used() {
	//lint:allow walltime fixture demonstrates a used allow
	time.Sleep(time.Millisecond)
}

// MissingReason has no justification: the directive is flagged and the
// walltime finding it meant to cover survives.
func MissingReason() {
	//lint:allow walltime
	time.Sleep(time.Millisecond)
}

// UnknownCheck names a check that does not exist: violation.
func UnknownCheck() {
	//lint:allow nosuchcheck because reasons
	_ = time.Millisecond
}

// Unused allows a check that finds nothing here: violation.
func Unused() {
	//lint:allow maporder nothing on the next line trips this check
	_ = time.Millisecond
}

// Package lockorder is a fixture corpus for the lockorder check: nested
// acquisition of the hot locks against the canonical order. The types
// mirror the repo's hot-lock chain by name.
package lockorder

import "sync"

// Node stands in for the membership/node lock (rank 0).
type Node struct {
	mu sync.Mutex
}

// ShardRouter stands in for the routed-lookup lock (rank 1).
type ShardRouter struct {
	mu sync.Mutex
}

// Directory stands in for the directory lock (rank 2).
type Directory struct {
	mu sync.RWMutex
}

// Inverted takes Directory before Node: violation.
func Inverted(n *Node, d *Directory) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
}

// Canonical takes Node before Directory: fine.
func Canonical(n *Node, d *Directory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// Sequential releases before the next acquisition: fine.
func Sequential(n *Node, d *Directory) {
	d.mu.Lock()
	d.mu.Unlock()
	n.mu.Lock()
	n.mu.Unlock()
}

// InvertedRouter takes Directory before ShardRouter: violation.
func InvertedRouter(r *ShardRouter, d *Directory) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
}

// RouterCanonical takes Node, then ShardRouter, then Directory: fine.
func RouterCanonical(n *Node, r *ShardRouter, d *Directory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// InterestTable stands in for the interest-table lock (rank 3).
type InterestTable struct {
	mu sync.Mutex
}

// tcpPeer stands in for the per-peer transport lock (transport chain).
type tcpPeer struct {
	mu sync.Mutex
}

// lockShard acquires the ShardRouter lock: a helper whose acquisition
// only matters to callers that already hold something.
func lockShard(r *ShardRouter) {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// InvertedThroughCall holds InterestTable and reaches the ShardRouter
// lock through lockShard: the inversion exists only interprocedurally.
func InvertedThroughCall(it *InterestTable, r *ShardRouter) {
	it.mu.Lock()
	defer it.mu.Unlock()
	lockShard(r)
}

// CrossChainAB holds InterestTable, then takes tcpPeer: no declared
// rank relates the two chains, so this edge is locally legal.
func CrossChainAB(it *InterestTable, p *tcpPeer) {
	it.mu.Lock()
	defer it.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
}

// CrossChainBA takes them in the opposite order: combined with
// CrossChainAB the inferred graph has a cycle no rank row forbids, and
// some interleaving of the two functions deadlocks.
func CrossChainBA(it *InterestTable, p *tcpPeer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	it.mu.Lock()
	defer it.mu.Unlock()
}

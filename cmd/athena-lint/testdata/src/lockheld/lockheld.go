// Package lockheld is a fixture corpus for the lockheld check: Lock
// without a same-function Unlock.
package lockheld

import "sync"

type counter struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	n   int
}

// Leak locks and never unlocks: violation.
func (c *counter) Leak() int {
	c.mu.Lock()
	return c.n
}

// ReadLeak read-locks and never read-unlocks: violation.
func (c *counter) ReadLeak() int {
	c.rmu.RLock()
	return c.n
}

// Balanced defers the unlock: fine.
func (c *counter) Balanced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// EarlyOut unlocks on both paths without defer: fine.
func (c *counter) EarlyOut() int {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Handoff acquires for its caller: suppressed.
func (c *counter) Handoff() {
	//lint:allow lockheld handoff: Release unlocks on the caller's behalf
	c.mu.Lock()
}

// Release completes the handoff (an Unlock with no Lock is not flagged).
func (c *counter) Release() {
	c.mu.Unlock()
}

// Package gobuse is a fixture corpus for the gobuse check: any import of
// encoding/gob is a violation, plain or aliased, because the module's
// wire format is the explicit codec in internal/wire.
package gobuse

import (
	"bytes"
	"encoding/gob"
	"encoding/json"

	stealthy "encoding/gob"
)

// Encode uses the plainly-imported gob: the import is the violation.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode uses the aliased import: renaming does not hide the path.
func Decode(b []byte, v any) error {
	return stealthy.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// Marshal uses encoding/json, which is fine: only gob is banned.
func Marshal(v any) ([]byte, error) {
	return json.Marshal(v)
}

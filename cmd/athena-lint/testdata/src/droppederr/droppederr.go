// Package droppederr is a fixture corpus for the droppederr check:
// discarded error returns from transport sends and wire framing.
package droppederr

import (
	"encoding/gob"

	"athena/internal/transport"
)

// Fling discards transport errors two ways: both violations.
func Fling(tr transport.Transport) {
	tr.Send("peer", 1, nil)
	_ = tr.Send("peer", 1, nil)
}

// Checked handles the error: fine.
func Checked(tr transport.Transport) error {
	if err := tr.Send("peer", 1, nil); err != nil {
		return err
	}
	return nil
}

// BestEffort documents the drop: suppressed.
func BestEffort(tr transport.Transport) {
	//lint:allow droppederr gossip is best-effort; the next round retransmits
	tr.Send("peer", 1, nil)
}

// Frame drops a gob encode error: violation.
func Frame(enc *gob.Encoder, v any) {
	enc.Encode(v)
}

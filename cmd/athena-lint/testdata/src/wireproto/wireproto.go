// Package wireproto is the fixture corpus for the wireproto check: a
// miniature wire codec whose Type constants are each missing a different
// protocol artifact. TypeEcho is fully wired (zero findings prove the
// cross-reference recognizes complete coverage); TypeEchoReply cannot be
// decoded, TypeChunk cannot be priced or fuzzed and is never built in
// tests, TypeProbe is never dispatched, and TypeRetired carries the
// annotated exception for a frame kept only for decode compatibility.
package wireproto

const (
	TypeEcho = 1 + iota
	TypeEchoReply
	TypeChunk
	TypeProbe
	TypeRetired //lint:allow wireproto retired frame kept for decode compat; no new traffic to fuzz
)

type Echo struct{ Seq uint64 }
type EchoReply struct{ Seq uint64 }
type Chunk struct{ Data []byte }
type Probe struct{}
type Retired struct{}

func typeID(payload any) (byte, bool) {
	switch payload.(type) {
	case *Echo:
		return TypeEcho, true
	case *EchoReply:
		return TypeEchoReply, true
	case *Chunk:
		return TypeChunk, true
	case *Probe:
		return TypeProbe, true
	case *Retired:
		return TypeRetired, true
	}
	return 0, false
}

func appendPayload(dst []byte, payload any) []byte {
	switch m := payload.(type) {
	case *Echo:
		return appendUint(dst, m.Seq)
	case *EchoReply:
		return appendUint(dst, m.Seq)
	case *Chunk:
		return append(dst, m.Data...)
	case *Probe, *Retired:
		return dst
	}
	return dst
}

// readPayload is missing the TypeEchoReply case: received EchoReply
// frames fail to decode.
func readPayload(id byte) any {
	switch id {
	case TypeEcho:
		return &Echo{}
	case TypeChunk:
		return &Chunk{}
	case TypeProbe:
		return &Probe{}
	case TypeRetired:
		return &Retired{}
	}
	return nil
}

// Chunk has no WireSize method: the bandwidth model cannot price it.
func (Echo) WireSize() int64      { return 8 }
func (EchoReply) WireSize() int64 { return 8 }
func (Probe) WireSize() int64     { return 0 }
func (Retired) WireSize() int64   { return 0 }

// handleMessage is missing the Probe case: delivered Probe frames are
// silently dropped.
func handleMessage(payload any) {
	switch payload.(type) {
	case *Echo:
	case *EchoReply:
	case *Chunk:
	case *Retired:
	}
}

func appendUint(dst []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// Test-side coverage for the fixture codec, parsed (not compiled) by the
// wireproto check: FuzzChunk is deliberately absent and Chunk is never
// constructed — the coverage gaps the check must flag — while Retired is
// exercised by a plain test so only its fuzz target is missing.
package wireproto

import "testing"

func FuzzEcho(f *testing.F) {
	f.Fuzz(func(t *testing.T, seq uint64) {
		roundTrip(t, &Echo{Seq: seq})
	})
}

func FuzzEchoReply(f *testing.F) {
	f.Fuzz(func(t *testing.T, seq uint64) {
		roundTrip(t, &EchoReply{Seq: seq})
	})
}

func FuzzProbe(f *testing.F) {
	f.Fuzz(func(t *testing.T, _ uint64) {
		roundTrip(t, &Probe{})
	})
}

func TestRetiredStillDecodes(t *testing.T) {
	roundTrip(t, &Retired{})
}

func roundTrip(t *testing.T, payload any) {
	t.Helper()
	id, ok := typeID(payload)
	if !ok {
		t.Fatalf("typeID rejected %T", payload)
	}
	if got := readPayload(id); got == nil {
		t.Fatalf("readPayload(%d) = nil", id)
	}
	_ = appendPayload(nil, payload)
}

// Package laneshare is the fixture corpus for the laneshare check: a
// seeded miniature of the PDES kernel's lane discipline (internal/simclock)
// in which the mailbox post has been deleted along the violating paths.
// Handlers registered through AtCall / AfterCall run on the owning lane's
// worker; every cross-lane effect must be buffered with Post and merged at
// the window barrier, or the run stops replaying from its seed.
package laneshare

import "sync"

// post is one buffered cross-lane event.
type post struct {
	dst *Lane
	at  int64
	arg any
}

// Lane is a miniature kernel lane. inbox holds events the kernel merged
// in for this lane; outbox buffers events this lane emitted for others.
type Lane struct {
	now    int64
	inbox  []post
	outbox []post
	peer   *Lane
}

// AtCall registers fn(arg) at absolute tick t on this lane — a kernel
// entry point; the bodies of registered handlers are lane-reachable.
func (l *Lane) AtCall(t int64, fn func(any), arg any) {
	l.inbox = append(l.inbox, post{dst: l, at: t, arg: arg})
	_ = fn
}

// AfterCall registers fn(arg) a relative delay after the lane's clock.
func (l *Lane) AfterCall(d int64, fn func(any), arg any) {
	l.AtCall(l.now+d, fn, arg)
}

// Post buffers a cross-lane event in the sender's own outbox; the kernel
// drains outboxes at the barrier and appends to each destination inbox in
// canonical lane order. This is the only legal way to affect a peer.
func (l *Lane) Post(dst *Lane, at int64, arg any) {
	l.outbox = append(l.outbox, post{dst: dst, at: at, arg: arg})
}

// Wire registers the handlers in the three shapes the root scan resolves:
// a top-level function, method values, and a func literal.
func Wire(l *Lane) {
	l.AtCall(0, tickHandler, nil)
	l.AtCall(1, l.onDeliver, nil)
	l.AfterCall(2, l.onForward, nil)
	l.AfterCall(3, l.onStats, nil)
	l.AfterCall(4, l.onSeed, nil)
	l.AfterCall(5, func(any) { l.now++ }, nil)
}

// delivered counts deliveries across all lanes: package-level state
// written from lane code, so worker interleaving orders the increments.
var delivered int

// tickHandler is a registered top-level handler.
func tickHandler(any) {
	delivered++
}

// onDeliver hands an event to the peer lane with the mailbox post
// deleted: it writes the peer's inbox directly and pokes the peer's
// clock, so the result depends on which worker runs first.
func (l *Lane) onDeliver(arg any) {
	dst := l.peer
	dst.inbox = append(dst.inbox, post{dst: dst, at: l.now, arg: arg})
	dst.bump()
}

// onForward is the correct shape: the effect is buffered in the sender's
// own outbox and merged at the barrier.
func (l *Lane) onForward(arg any) {
	l.now++
	l.Post(l.peer, l.now+1, arg)
}

// bump advances a lane's clock.
func (l *Lane) bump() { l.now++ }

// statsMu serializes the shared tally below; the lock orders the writes,
// so laneshare defers to the lock checks for mutex-guarded state.
var (
	statsMu sync.Mutex
	stats   int
)

// onStats writes shared state under the mutex — legal.
func (l *Lane) onStats(any) {
	statsMu.Lock()
	stats++
	statsMu.Unlock()
}

// seedCounter is bumped once per lane during warm-up, before any worker
// forks; the exception is deliberate and annotated.
var seedCounter int

func (l *Lane) onSeed(any) {
	seedCounter++ //lint:allow laneshare warm-up runs single-threaded before workers fork
}

// Package metricshotlookup is a fixture corpus for the metricshotlookup
// check: registry lookups inside loops.
package metricshotlookup

import "athena/internal/metrics"

// CountBad looks the counter up on every iteration: violation.
func CountBad(reg *metrics.Registry, events []string) {
	for range events {
		reg.Counter("events").Inc()
	}
}

// CountGood resolves once and holds the pointer: fine.
func CountGood(reg *metrics.Registry, events []string) {
	c := reg.Counter("events")
	for range events {
		c.Inc()
	}
}

// ObserveBad does a histogram lookup per sample in a classic for loop:
// violation.
func ObserveBad(reg *metrics.Registry, samples []float64) {
	for i := 0; i < len(samples); i++ {
		reg.Histogram("lat", metrics.LatencyBuckets()).Observe(samples[i])
	}
}

package main

// Wire-size check. Every frame the simulator charges to the bandwidth
// model is priced by the size argument of the send helpers
// (sendTo/sendToPri/floodCtl), and the wire codec's WireSize() is the
// single source of truth for what a message costs. A call site that
// passes anything else — a literal, a stale variable, the wrong
// message's size — silently decouples the priced bytes from the encoded
// bytes, and every figure downstream of the bandwidth model quietly
// drifts. The rule: the size argument must be payload.WireSize() on the
// very expression passed as the payload, except inside pure forwarders
// where both size and payload are the enclosing function's parameters
// (the wrapper's own callers are checked instead).

import (
	"go/ast"
	"go/types"
)

// sendArgIdx maps each checked helper to the positions of its size and
// payload arguments.
var sendArgIdx = map[string]struct{ size, payload int }{
	"sendTo":    {1, 2},
	"sendToPri": {1, 2},
	"floodCtl":  {0, 1},
}

func runWireSize(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			params := funcParamObjs(p, fn)
			ast.Inspect(fn.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				idx, ok := sendArgIdx[sel.Sel.Name]
				if !ok || len(call.Args) <= idx.payload {
					return true
				}
				size, payload := call.Args[idx.size], call.Args[idx.payload]
				if wireSizeOfPayload(p, size, payload) {
					return true
				}
				if isParam(p, size, params) && isParam(p, payload, params) {
					return true // pure forwarder; its callers are checked
				}
				p.Reportf(size.Pos(), "size argument of %s must be %s.WireSize() so the bandwidth model prices exactly the encoded frame",
					sel.Sel.Name, p.Render(payload))
				return true
			})
		}
	}
}

// funcParamObjs collects the declared objects of fn's parameters
// (including the receiver).
func funcParamObjs(p *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if o := p.ObjectOf(name); o != nil {
					objs[o] = true
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return objs
}

// wireSizeOfPayload reports whether size is exactly payload.WireSize().
// A payload passed as &x matches x.WireSize(): WireSize has value
// receivers, and the address-of changes the frame's identity, not its
// length.
func wireSizeOfPayload(p *Pass, size, payload ast.Expr) bool {
	call, ok := size.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WireSize" {
		return false
	}
	if u, ok := payload.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		payload = u.X
	}
	return p.Render(sel.X) == p.Render(payload)
}

// isParam reports whether e is a bare identifier naming one of the
// enclosing function's parameters.
func isParam(p *Pass, e ast.Expr, params map[types.Object]bool) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	o := p.ObjectOf(id)
	return o != nil && params[o]
}

package main

import (
	"testing"

	"athena"
)

func TestMetaFlags(t *testing.T) {
	var m metaFlags
	if err := m.Set("h=4,0.6"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("k=5,0.2,30s"); err != nil {
		t.Fatal(err)
	}
	if got := m.table["h"]; got.Cost != 4 || got.ProbTrue != 0.6 {
		t.Errorf("h = %+v", got)
	}
	if got := m.table["k"]; got.Validity.Seconds() != 30 {
		t.Errorf("k = %+v", got)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func TestMetaFlagsErrors(t *testing.T) {
	var m metaFlags
	for _, bad := range []string{"", "noequals", "x=1", "x=a,b", "x=1,b", "x=1,0.5,zzz"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestNaivePlanCoversAll(t *testing.T) {
	dnf := athena.ToDNF(athena.MustParseExpr("(a & b) | (c & d & e)"))
	plan := naivePlan(dnf)
	if len(plan.TermOrder) != 2 {
		t.Fatalf("terms = %v", plan.TermOrder)
	}
	for i, order := range plan.LiteralOrder {
		if len(order) != len(dnf.Terms[i].Literals) {
			t.Errorf("term %d literal order = %v", i, order)
		}
		for j, idx := range order {
			if idx != j {
				t.Errorf("naive plan not in written order: %v", order)
			}
		}
	}
	// The paper's worked example through the naive plan.
	meta := athena.MetaTable{
		"h": {Cost: 4, ProbTrue: 0.6},
		"k": {Cost: 5, ProbTrue: 0.2},
	}
	d2 := athena.ToDNF(athena.MustParseExpr("h & k"))
	if got := athena.ExpectedQueryCost(d2, meta, naivePlan(d2)); got != 7.0 {
		t.Errorf("naive cost = %v, want 7.0", got)
	}
}

// Command ddexpr is a decision-logic workbench for the Section III-A
// analysis: parse an expression, normalize it to DNF, and compute the
// short-circuit retrieval plan and its expected cost.
//
//	ddexpr '(h & k)' -meta h=4,0.6 -meta k=5,0.2
//
// prints the paper's worked example: fetch k first, expected cost 5.8
// versus 7.0 the naive way. Metadata is label=cost,probTrue[,validity].
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"athena"
)

type metaFlags struct {
	table athena.MetaTable
}

func (m *metaFlags) String() string { return fmt.Sprint(m.table) }

func (m *metaFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok {
		return errors.New("want label=cost,probTrue[,validity]")
	}
	parts := strings.Split(spec, ",")
	if len(parts) < 2 {
		return errors.New("want label=cost,probTrue[,validity]")
	}
	cost, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("cost: %w", err)
	}
	prob, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("probTrue: %w", err)
	}
	meta := athena.Meta{Cost: cost, ProbTrue: prob}
	if len(parts) > 2 {
		validity, err := time.ParseDuration(parts[2])
		if err != nil {
			return fmt.Errorf("validity: %w", err)
		}
		meta.Validity = validity
	}
	if m.table == nil {
		m.table = make(athena.MetaTable)
	}
	m.table[name] = meta
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ddexpr:", err)
		os.Exit(1)
	}
}

func run() error {
	var meta metaFlags
	flag.Var(&meta, "meta", "per-label metadata: label=cost,probTrue[,validity] (repeatable)")
	flag.Parse()

	input := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(input) == "" {
		// The paper's Section III-A worked example as a default demo.
		input = "h & k"
		if meta.table == nil {
			meta.table = athena.MetaTable{
				"h": {Cost: 4, ProbTrue: 0.6},
				"k": {Cost: 5, ProbTrue: 0.2},
			}
			fmt.Println("(no expression given; showing the paper's Section III-A example)")
		}
	}

	expr, err := athena.ParseExpr(input)
	if err != nil {
		return err
	}
	dnf := athena.ToDNF(expr)
	fmt.Printf("expression:   %s\n", expr)
	fmt.Printf("DNF:          %s\n", dnf)
	fmt.Printf("labels:       %s\n", strings.Join(dnf.Labels(), ", "))
	fmt.Printf("alternatives: %d courses of action\n", len(dnf.Terms))

	plan := athena.GreedyPlan(dnf, meta.table)
	fmt.Println("\nshort-circuit retrieval plan (Section III-A):")
	for pos, ti := range plan.TermOrder {
		term := dnf.Terms[ti]
		var order []string
		for _, li := range plan.LiteralOrder[ti] {
			lit := term.Literals[li]
			m := meta.table.Get(lit.Label)
			order = append(order, fmt.Sprintf("%s (C=%.3g, p=%.2f)", lit, m.Cost, m.ProbTrue))
		}
		fmt.Printf("  %d. try: %s\n", pos+1, strings.Join(order, " -> "))
	}

	naive := athena.ExpectedQueryCost(dnf, meta.table, naivePlan(dnf))
	greedy := athena.ExpectedQueryCost(dnf, meta.table, plan)
	fmt.Printf("\nexpected retrieval cost:\n")
	fmt.Printf("  naive order:  %.4g\n", naive)
	fmt.Printf("  greedy order: %.4g", greedy)
	if naive > 0 {
		fmt.Printf("  (%.1f%% saved)", 100*(naive-greedy)/naive)
	}
	fmt.Println()
	return nil
}

// naivePlan evaluates in written order.
func naivePlan(d athena.DNF) athena.QueryPlan {
	plan := athena.QueryPlan{
		TermOrder:    make([]int, len(d.Terms)),
		LiteralOrder: make([][]int, len(d.Terms)),
	}
	for i, t := range d.Terms {
		plan.TermOrder[i] = i
		order := make([]int, len(t.Literals))
		for j := range order {
			order[j] = j
		}
		plan.LiteralOrder[i] = order
	}
	return plan
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"athena"
	iathena "athena/internal/athena"
	"athena/internal/metrics"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
	"athena/internal/wire"
)

func TestParseSource(t *testing.T) {
	d, err := parseSource("self", "/cam/a=200000,60s,viableA+viableB")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name.String() != "/cam/a" || d.Size != 200000 || d.Validity != time.Minute {
		t.Errorf("descriptor = %+v", d)
	}
	if len(d.Labels) != 2 || d.Labels[0] != "viableA" {
		t.Errorf("labels = %v", d.Labels)
	}
	if d.Source != "self" {
		t.Errorf("source = %q", d.Source)
	}
}

func TestParseSourceRemote(t *testing.T) {
	d, err := parseSource("self", "/cam/b=1000,5s,x@othernode")
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != "othernode" {
		t.Errorf("source = %q, want othernode", d.Source)
	}
}

func TestParseSourceErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noequals",
		"/cam/a=1000,60s",              // missing labels
		"/cam/a=abc,60s,x",             // bad size
		"/cam/a=1000,sixty,x",          // bad validity
		"relative/name=1000,60s,x",     // bad name
		"/cam/a=1000,60s,x,extra,more", // too many fields
	} {
		if _, err := parseSource("self", bad); err == nil {
			t.Errorf("parseSource(%q) accepted", bad)
		}
	}
}

func TestMetaFromDescriptors(t *testing.T) {
	descs := []object.Descriptor{
		{Size: 500, Labels: []string{"x", "y"}, ProbTrue: 0.7, Validity: time.Minute},
		{Size: 100, Labels: []string{"y"}, ProbTrue: 0.6, Validity: time.Second},
	}
	meta := metaFromDescriptors(descs)
	if meta["x"].Cost != 500 {
		t.Errorf("x cost = %v", meta["x"].Cost)
	}
	// Cheapest covering descriptor wins for shared labels.
	if meta["y"].Cost != 100 || meta["y"].Validity != time.Second {
		t.Errorf("y meta = %+v", meta["y"])
	}
}

func TestStaticWorld(t *testing.T) {
	w := staticWorld{"up": true}
	if !w.LabelValue("up", time.Now()) || w.LabelValue("down", time.Now()) {
		t.Error("staticWorld lookup")
	}
}

func TestRepeatableFlag(t *testing.T) {
	var r repeatable
	if err := r.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("b=2"); err != nil {
		t.Fatal(err)
	}
	if r.String() != "a=1,b=2" || len(r) != 2 {
		t.Errorf("repeatable = %v", r)
	}
}

func TestDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP demo in -short mode")
	}
	if err := runDemo(); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

// TestStatusEndpointSmoke wires a daemon-shaped node (real TCP transport,
// instrumented registry) and hits the status endpoint the way -status
// serves it.
func TestStatusEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP transport in -short mode")
	}
	tr, err := transport.NewTCP("solo", "127.0.0.1:0", wire.Codec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	reg := metrics.NewRegistry()
	tr.Instrument(transport.TCPMetrics{
		Sends:      reg.Counter("transport.sends"),
		SentBytes:  reg.Counter("transport.sent_bytes"),
		Redials:    reg.Counter("transport.redials"),
		SendErrors: reg.Counter("transport.send_errors"),
	})

	desc, err := parseSource("solo", "/cam/solo=1000,60s,up")
	if err != nil {
		t.Fatal(err)
	}
	auth := trust.NewAuthority()
	node, err := iathena.New(iathena.Config{
		ID:         "solo",
		Transport:  tr,
		Router:     &iathena.StaticRouter{Self: "solo"},
		Timers:     iathena.WallTimers{},
		Scheme:     athena.SchemeLVF,
		Directory:  iathena.NewDirectory([]object.Descriptor{desc}),
		Meta:       metaFromDescriptors([]object.Descriptor{desc}),
		World:      staticWorld{"up": true},
		Authority:  auth,
		Signer:     auth.Register("solo", []byte("solo")),
		Policy:     trust.TrustAll(),
		Descriptor: &desc,
		CacheBytes: 1 << 20,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(node.StatusMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	var s iathena.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Node != "solo" {
		t.Errorf("node = %q", s.Node)
	}
	if s.DirectoryVersion == 0 {
		t.Error("directory version missing")
	}
	if _, ok := s.Peers["solo"]; !ok {
		t.Errorf("self missing from peers: %v", s.Peers)
	}
}

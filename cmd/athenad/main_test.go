package main

import (
	"testing"
	"time"

	"athena/internal/object"
)

func TestParseSource(t *testing.T) {
	d, err := parseSource("self", "/cam/a=200000,60s,viableA+viableB")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name.String() != "/cam/a" || d.Size != 200000 || d.Validity != time.Minute {
		t.Errorf("descriptor = %+v", d)
	}
	if len(d.Labels) != 2 || d.Labels[0] != "viableA" {
		t.Errorf("labels = %v", d.Labels)
	}
	if d.Source != "self" {
		t.Errorf("source = %q", d.Source)
	}
}

func TestParseSourceRemote(t *testing.T) {
	d, err := parseSource("self", "/cam/b=1000,5s,x@othernode")
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != "othernode" {
		t.Errorf("source = %q, want othernode", d.Source)
	}
}

func TestParseSourceErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noequals",
		"/cam/a=1000,60s",              // missing labels
		"/cam/a=abc,60s,x",             // bad size
		"/cam/a=1000,sixty,x",          // bad validity
		"relative/name=1000,60s,x",     // bad name
		"/cam/a=1000,60s,x,extra,more", // too many fields
	} {
		if _, err := parseSource("self", bad); err == nil {
			t.Errorf("parseSource(%q) accepted", bad)
		}
	}
}

func TestMetaFromDescriptors(t *testing.T) {
	descs := []object.Descriptor{
		{Size: 500, Labels: []string{"x", "y"}, ProbTrue: 0.7, Validity: time.Minute},
		{Size: 100, Labels: []string{"y"}, ProbTrue: 0.6, Validity: time.Second},
	}
	meta := metaFromDescriptors(descs)
	if meta["x"].Cost != 500 {
		t.Errorf("x cost = %v", meta["x"].Cost)
	}
	// Cheapest covering descriptor wins for shared labels.
	if meta["y"].Cost != 100 || meta["y"].Validity != time.Second {
		t.Errorf("y meta = %+v", meta["y"])
	}
}

func TestStaticWorld(t *testing.T) {
	w := staticWorld{"up": true}
	if !w.LabelValue("up", time.Now()) || w.LabelValue("down", time.Now()) {
		t.Error("staticWorld lookup")
	}
}

func TestRepeatableFlag(t *testing.T) {
	var r repeatable
	if err := r.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("b=2"); err != nil {
		t.Fatal(err)
	}
	if r.String() != "a=1,b=2" || len(r) != 2 {
		t.Errorf("repeatable = %v", r)
	}
}

func TestDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP demo in -short mode")
	}
	if err := runDemo(); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

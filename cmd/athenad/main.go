// Command athenad runs one Athena node over real TCP — the deployment
// shape the paper used (one process per node, addressed by IP:PORT).
//
// Serve a sensor node:
//
//	athenad -id src -listen 127.0.0.1:7001 \
//	    -source /cam/alpha=200000,60s,viableA+viableB \
//	    -truth viableA=true -truth viableB=true
//
// Issue a decision query from a second node and exit with the answer:
//
//	athenad -id origin -listen 127.0.0.1:7002 -peer src=127.0.0.1:7001 \
//	    -query 'viableA & viableB' -deadline 30s
//
// With live membership (-join), no static -peer/-source wiring is needed
// on the consumer side: the node introduces itself to one known peer,
// learns the mesh and every advertised stream from the join handshake,
// floods heartbeats, evicts dead sources, and withdraws its own
// advertisement (a graceful leave) on exit:
//
//	athenad -id src -listen 127.0.0.1:7001 -heartbeat 2s \
//	    -source /cam/alpha=200000,60s,viableA+viableB
//	athenad -id origin -listen 127.0.0.1:7002 -join src=127.0.0.1:7001 \
//	    -truth viableA=true -truth viableB=true \
//	    -query 'viableA & viableB' -deadline 30s
//
// Or run a self-contained two-process-equivalent demo on loopback:
//
//	athenad -demo
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"athena"
	iathena "athena/internal/athena"
	"athena/internal/boolexpr"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
	"athena/internal/wire"
)

type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

// staticWorld is a fixed ground truth fed by -truth flags.
type staticWorld map[string]bool

func (w staticWorld) LabelValue(label string, _ time.Time) bool { return w[label] }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "athenad:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id        = flag.String("id", "athena-node", "node identifier")
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		schemeStr = flag.String("scheme", "lvfl", "retrieval scheme (cmp, slt, lcf, lvf, lvfl)")
		query     = flag.String("query", "", "decision expression to resolve (then exit)")
		deadline  = flag.Duration("deadline", 30*time.Second, "decision deadline for -query")
		demo      = flag.Bool("demo", false, "run a self-contained two-node TCP demo and exit")
		heartbeat = flag.Duration("heartbeat", 0, "membership heartbeat interval (0 = static directory; implied 2s when -join is used)")
		miss      = flag.Int("miss", 3, "missed heartbeats before a source is evicted")
		gfanout   = flag.Int("gossip-fanout", 0, "SWIM gossip probe fanout per interval (0 = flooded heartbeats)")
		suspectTO = flag.Duration("suspect-timeout", 0, "silence tolerated after suspicion before eviction (default miss*heartbeat)")
		status    = flag.String("status", "", "serve the observability endpoint on this address (e.g. :8080): /statusz JSON, /debug/vars, /debug/pprof")
		shards    = flag.Int("shards", 0, "partition the directory into this many name-prefix shards (0 = full replica; requires -gossip-fanout)")
		shardRF   = flag.Int("shard-replicas", 3, "replicas per directory shard when -shards is set")
		batchWin  = flag.Duration("batch-window", 0, "data-plane coalescing window: same-neighbor requests/data merge into batch frames for up to this long (0 = batching off)")
		batchByte = flag.Int64("batch-bytes", 0, "per-neighbor byte budget that flushes a coalescing queue early (default 256 KiB when -batch-window is set)")
		peers     repeatable
		routes    repeatable
		sources   repeatable
		truths    repeatable
		joins     repeatable
	)
	flag.Var(&peers, "peer", "peer as id=host:port (repeatable; static wiring, no handshake)")
	flag.Var(&routes, "route", "static route as dest=nexthop (repeatable)")
	flag.Var(&sources, "source", "sensor stream as name=sizeBytes,validity,label1+label2 (repeatable; first wins)")
	flag.Var(&truths, "truth", "ground truth as label=true|false (repeatable)")
	flag.Var(&joins, "join", "peer as id=host:port to join via the membership handshake (repeatable; enables -heartbeat)")
	flag.Parse()

	if *demo {
		return runDemo()
	}

	scheme, err := athena.ParseScheme(*schemeStr)
	if err != nil {
		return err
	}
	world := staticWorld{}
	for _, t := range truths {
		k, v, ok := strings.Cut(t, "=")
		if !ok {
			return fmt.Errorf("bad -truth %q", t)
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("bad -truth %q: %w", t, err)
		}
		world[k] = b
	}

	tr, err := transport.NewTCP(*id, *listen, wire.Codec{})
	if err != nil {
		return err
	}
	defer tr.Close()
	fmt.Printf("athenad: node %s listening on %s\n", *id, tr.Addr())

	for _, p := range peers {
		pid, addr, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -peer %q", p)
		}
		tr.AddPeer(pid, addr)
	}

	router := &iathena.StaticRouter{Self: *id, NextHops: map[string]string{}}
	for _, r := range routes {
		dst, hop, ok := strings.Cut(r, "=")
		if !ok {
			return fmt.Errorf("bad -route %q", r)
		}
		router.NextHops[dst] = hop
	}

	var desc *object.Descriptor
	var descList []object.Descriptor
	for _, s := range sources {
		d, err := parseSource(*id, s)
		if err != nil {
			return err
		}
		if desc == nil {
			desc = &d
		}
		descList = append(descList, d)
	}
	// With -join, remote advertisements arrive through the membership
	// handshake and gossip; static -source ...@srcnode flags remain the
	// out-of-band fallback for static deployments.
	dir := iathena.NewDirectory(descList)
	if len(joins) > 0 && *heartbeat <= 0 {
		*heartbeat = 2 * time.Second
	}

	var reg *metrics.Registry
	if *status != "" {
		reg = metrics.NewRegistry()
		tr.Instrument(transport.TCPMetrics{
			Sends:      reg.Counter("transport.sends"),
			SentBytes:  reg.Counter("transport.sent_bytes"),
			Redials:    reg.Counter("transport.redials"),
			SendErrors: reg.Counter("transport.send_errors"),
		})
	}

	meta := metaFromDescriptors(descList)
	auth := trust.NewAuthority()
	node, err := iathena.New(iathena.Config{
		ID:        *id,
		Transport: tr,
		Router:    router,
		Timers:    iathena.WallTimers{},
		Scheme:    scheme,
		Directory: dir,
		Meta:      meta,
		World:     world,
		Authority: auth,
		Signer:    auth.Register(*id, []byte("athenad-"+*id)),
		Policy:    trust.TrustAll(),
		Descriptor: func() *object.Descriptor {
			if desc != nil && desc.Source == *id {
				return desc
			}
			return nil
		}(),
		CacheBytes:        64 << 20,
		HeartbeatInterval: *heartbeat,
		HeartbeatMiss:     *miss,
		GossipFanout:      *gfanout,
		SuspectTimeout:    *suspectTO,
		Shards:            *shards,
		ShardReplicas:     *shardRF,
		CoalesceWindow:    *batchWin,
		CoalesceBytes:     *batchByte,
		Metrics:           reg,
	})
	if err != nil {
		return err
	}

	if *status != "" {
		ln, err := net.Listen("tcp", *status)
		if err != nil {
			return fmt.Errorf("status listen %s: %w", *status, err)
		}
		defer ln.Close()
		fmt.Printf("athenad: status endpoint on http://%s/statusz\n", ln.Addr())
		// Closing srv (deferred) severs open status connections as well as
		// the listener, so shutdown doesn't strand pollers mid-response.
		srv := &http.Server{Handler: node.StatusMux()}
		defer srv.Close()
		go func() {
			_ = srv.Serve(ln)
		}()
	}

	// Membership join handshake: introduce this node to each named peer;
	// the acks carry the rest of the mesh and every advertised stream.
	for _, j := range joins {
		pid, addr, ok := strings.Cut(j, "=")
		if !ok {
			return fmt.Errorf("bad -join %q", j)
		}
		tr.AddPeer(pid, addr)
		if err := node.Join(pid); err != nil {
			return fmt.Errorf("join %s: %w", pid, err)
		}
		fmt.Printf("athenad: joined via %s (%s)\n", pid, addr)
	}
	if *heartbeat > 0 {
		// Withdraw our advertisement on the way out so peers tombstone us
		// immediately instead of waiting out the miss budget.
		defer func() { _ = node.Leave() }()
	}

	if *query != "" {
		expr, err := athena.ParseExpr(*query)
		if err != nil {
			return err
		}
		dnf := athena.ToDNF(expr)
		if *heartbeat > 0 {
			// Joined advertisements propagate asynchronously: give the
			// directory a moment to cover the query's labels, then fold the
			// advertised streams into the planning metadata.
			waitUntil := time.Now().Add(5 * time.Second)
			for !labelsCovered(dir, dnf.Labels()) && time.Now().Before(waitUntil) {
				time.Sleep(50 * time.Millisecond)
			}
			mergeDirectoryMeta(meta, dir)
		}
		done := make(chan iathena.QueryResult, 1)
		node.OnQueryDone(func(r iathena.QueryResult) { done <- r })
		qid, err := node.QueryInit(dnf, *deadline)
		if err != nil {
			return err
		}
		fmt.Printf("athenad: issued %s: %s (deadline %v)\n", qid, expr, *deadline)
		select {
		case r := <-done:
			fmt.Printf("athenad: %s -> %s after %v\n", qid, r.Status, r.Finished.Sub(r.Issued).Round(time.Millisecond))
			if r.Status == athena.Expired {
				return errors.New("decision deadline expired")
			}
			return nil
		case <-time.After(*deadline + 10*time.Second):
			return errors.New("timed out waiting for decision")
		}
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("athenad: shutting down")
	return nil
}

// parseSource parses name=sizeBytes,validity,label1+label2[@sourceNode].
func parseSource(self, spec string) (object.Descriptor, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return object.Descriptor{}, fmt.Errorf("bad -source %q", spec)
	}
	srcNode := self
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		srcNode = rest[at+1:]
		rest = rest[:at]
	}
	parts := strings.Split(rest, ",")
	if len(parts) != 3 {
		return object.Descriptor{}, fmt.Errorf("bad -source %q: want name=size,validity,labels", spec)
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return object.Descriptor{}, fmt.Errorf("bad size in %q: %w", spec, err)
	}
	validity, err := time.ParseDuration(parts[1])
	if err != nil {
		return object.Descriptor{}, fmt.Errorf("bad validity in %q: %w", spec, err)
	}
	parsed, err := names.Parse(name)
	if err != nil {
		return object.Descriptor{}, err
	}
	return object.Descriptor{
		Name:     parsed,
		Size:     size,
		Validity: validity,
		Labels:   strings.Split(parts[2], "+"),
		Source:   srcNode,
		ProbTrue: 0.5,
	}, nil
}

// labelsCovered reports whether every label has at least one advertised
// covering source.
func labelsCovered(dir *iathena.Directory, labels []string) bool {
	for _, l := range labels {
		if dir.SourceForLabel(l, nil) == "" {
			return false
		}
	}
	return true
}

// mergeDirectoryMeta folds advertised streams learned at runtime (via the
// membership handshake) into the planning metadata table.
func mergeDirectoryMeta(meta boolexpr.MetaTable, dir *iathena.Directory) {
	for _, a := range dir.Snapshot() {
		if a.Withdrawn {
			continue
		}
		d, err := a.Descriptor()
		if err != nil {
			continue
		}
		for _, l := range d.Labels {
			if existing, ok := meta[l]; !ok || float64(d.Size) < existing.Cost {
				meta[l] = boolexpr.Meta{Cost: float64(d.Size), ProbTrue: d.ProbTrue, Validity: d.Validity}
			}
		}
	}
}

func metaFromDescriptors(descs []object.Descriptor) boolexpr.MetaTable {
	meta := make(boolexpr.MetaTable)
	for _, d := range descs {
		for _, l := range d.Labels {
			if existing, ok := meta[l]; !ok || float64(d.Size) < existing.Cost {
				meta[l] = boolexpr.Meta{Cost: float64(d.Size), ProbTrue: d.ProbTrue, Validity: d.Validity}
			}
		}
	}
	return meta
}

// runDemo spins up a sensor node and a query node over loopback TCP and
// resolves one decision end-to-end.
func runDemo() error {
	world := staticWorld{"viableA": true, "viableB": true, "viableC": false}
	desc := object.Descriptor{
		Name:     names.MustParse("/demo/cam"),
		Size:     250_000,
		Validity: time.Minute,
		Labels:   []string{"viableA", "viableB", "viableC"},
		Source:   "src",
		ProbTrue: 0.6,
	}
	dir := iathena.NewDirectory([]object.Descriptor{desc})
	auth := trust.NewAuthority()

	mk := func(id string, d *object.Descriptor) (*iathena.Node, *transport.TCPTransport, error) {
		tr, err := transport.NewTCP(id, "127.0.0.1:0", wire.Codec{})
		if err != nil {
			return nil, nil, err
		}
		node, err := iathena.New(iathena.Config{
			ID: id, Transport: tr, Router: &iathena.StaticRouter{Self: id},
			Timers: iathena.WallTimers{}, Scheme: athena.SchemeLVFL,
			Directory: dir, Meta: metaFromDescriptors([]object.Descriptor{desc}),
			World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 16 << 20,
		})
		if err != nil {
			if cerr := tr.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, nil, err
		}
		return node, tr, nil
	}

	_, srcTr, err := mk("src", &desc)
	if err != nil {
		return err
	}
	defer srcTr.Close()
	origin, originTr, err := mk("origin", nil)
	if err != nil {
		return err
	}
	defer originTr.Close()
	srcTr.AddPeer("origin", originTr.Addr())
	originTr.AddPeer("src", srcTr.Addr())

	done := make(chan iathena.QueryResult, 1)
	origin.OnQueryDone(func(r iathena.QueryResult) { done <- r })
	expr := athena.ToDNF(athena.MustParseExpr("(viableA & viableB) | viableC"))
	qid, err := origin.QueryInit(expr, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("athenad demo: %s = %s over real TCP (%s <-> %s)\n", qid, expr, originTr.Addr(), srcTr.Addr())
	select {
	case r := <-done:
		fmt.Printf("athenad demo: decision %s in %v\n", r.Status, r.Finished.Sub(r.Issued).Round(time.Millisecond))
		if r.Status != athena.ResolvedTrue {
			return fmt.Errorf("unexpected status %v", r.Status)
		}
		return nil
	case <-time.After(30 * time.Second):
		return errors.New("demo timed out")
	}
}

// Command athena-sim regenerates the paper's evaluation (Section VII):
//
//	athena-sim -fig 2          # Figure 2: resolution ratio vs dynamics
//	athena-sim -fig 3          # Figure 3: bandwidth by scheme
//	athena-sim -fig a1         # Ablation: label sharing vs trust
//	athena-sim -fig a2         # Ablation: prefetch on/off
//	athena-sim -fig a3         # Ablation: cache capacity
//	athena-sim -fig a4         # Ablation: infomax triage under overload
//	athena-sim -fig a5         # Ablation: sensor noise vs corroboration cost
//	athena-sim -fig a6         # Ablation: link loss with/without retries
//	athena-sim -fig a7         # Ablation: node churn with/without live membership
//	athena-sim -fig a8         # Ablation: membership control plane, flood vs gossip
//	athena-sim -fig a9         # Ablation: directory sharding, memory/sync vs full replica
//	athena-sim -fig a10        # Ablation: parallel kernel throughput and speedup
//	athena-sim -fig a11        # Ablation: data-plane batching, frames/bytes vs latency
//	athena-sim -fig all        # everything
//
// Two CI-oriented scenarios sit outside the figure set:
//
//	athena-sim -fig dump       # fixed-seed cluster on the parallel kernel;
//	                           # prints the full outcome as deterministic JSON
//	                           # (byte-identical for any -workers / GOMAXPROCS)
//	athena-sim -fig smoke      # n=2048 gossip+sharding membership fleet on the
//	                           # parallel kernel; prints the row as JSON
//
// Use -reps, -seed, -schemes and -quick to trade fidelity for time.
// -workers sets the parallel kernel's executor count for the
// kernel-backed scenarios (a10, dump, smoke); the classic figures always
// run the sequential reference engine so their published numbers stay
// byte-identical across releases.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"athena"
	"athena/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "athena-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 2, 3, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, all, dump, smoke")
		reps    = flag.Int("reps", 10, "repetitions per data point")
		seed    = flag.Int64("seed", 1, "base random seed")
		schemes = flag.String("schemes", "cmp,slt,lcf,lvf,lvfl", "comma-separated schemes")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables (figures 2 and 3)")
		quick   = flag.Bool("quick", false, "smaller workload for a fast smoke run")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel kernel workers for kernel-backed scenarios (a10, dump, smoke); never affects results, only wall time")
		batch   = flag.Duration("batch-window", 0, "data-plane coalescing window for the dump scenario (0 = batching off); CI diffs dump output with batching on and off")
	)
	flag.Parse()

	// The CI scenarios bypass the figure machinery entirely.
	switch *fig {
	case "dump":
		return runDump(*seed, *workers, *batch)
	case "smoke":
		return runSmoke(*seed, *workers, *quick)
	}

	cfg := experiment.Default()
	cfg.BaseSeed = *seed
	cfg.Reps = *reps
	cfg.Schemes = nil
	for _, s := range strings.Split(*schemes, ",") {
		scheme, err := athena.ParseScheme(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		cfg.Schemes = append(cfg.Schemes, scheme)
	}
	if *quick {
		cfg.Reps = min(cfg.Reps, 3)
		cfg.Workload.GridRows, cfg.Workload.GridCols = 5, 5
		cfg.Workload.Nodes = 14
		cfg.Workload.QueriesPerNode = 2
	}

	want := func(name string) bool { return *fig == name || *fig == "all" }
	//lint:allow walltime operator-facing elapsed-time report, not simulation state
	start := time.Now()

	if want("2") {
		points, err := experiment.Fig2(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(experiment.CSV(points))
		} else {
			fmt.Print(experiment.RenderFig2(points))
		}
		fmt.Println()
	}
	if want("3") {
		points, err := experiment.Fig3(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(experiment.CSV(points))
		} else {
			fmt.Print(experiment.RenderFig3(points))
		}
		fmt.Println()
	}
	if want("a1") {
		rows, err := experiment.AblationLabelSharing(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A1: label sharing vs trusted-annotator fraction (40% fast)",
			"label answers", rows))
		fmt.Println()
	}
	if want("a2") {
		rows, err := experiment.AblationPrefetch(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A2: prefetch on/off under lvf (40% fast)", "", rows))
		fmt.Println()
	}
	if want("a3") {
		rows, err := experiment.AblationCache(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A3: content-store capacity under lvf (40% fast)", "", rows))
		fmt.Println()
	}
	if want("a4") {
		fmt.Print(experiment.RenderInfomax(experiment.AblationInfomax(cfg.BaseSeed, cfg.Reps)))
		fmt.Println()
	}
	if want("a5") {
		rows, err := experiment.AblationNoise(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A5: sensor noise with 95% corroboration under lvf (40% fast)",
			"", rows))
		fmt.Println()
	}
	if want("a6") {
		rows, err := experiment.AblationFailure(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A6: link loss with/without the retry layer (40% fast)",
			"retransmits", rows))
		fmt.Println()
	}
	if want("a7") {
		rows, err := experiment.AblationChurn(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A7: node churn with live membership vs static directory (lvf, 40% fast)",
			"evictions", rows))
		fmt.Println()
	}
	if want("a8") {
		// The flood protocol's per-interval cost is O(n²) messages, so the
		// n=512 cell dominates the small-n sweep's runtime; -quick drops it
		// along with the n=2048 gossip+sharding scale row that the full
		// (nil-sizes) sweep appends.
		var sizes []int
		if *quick {
			sizes = []int{8, 32, 128}
		}
		rows, err := experiment.AblationMembership(cfg, sizes)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderMembership(rows))
		fmt.Println()
	}
	if want("a9") {
		// The structural rig is cheap; -quick trims only the 10^5 cells.
		sources := []int{1_000, 10_000, 100_000}
		if *quick {
			sources = []int{1_000, 10_000}
		}
		rows, err := experiment.AblationShardScale(sources, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderShardScale(rows))
		fmt.Println()
	}
	if want("a10") {
		sizes := []int{512, 2048, 10240}
		if *quick {
			sizes = []int{512}
		}
		wlist := []int{1}
		if *workers > 1 {
			wlist = append(wlist, *workers)
		}
		rows, err := experiment.AblationKernelScale(sizes, wlist, cfg.BaseSeed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderKernelScale(rows))
		fmt.Println()
	}
	if want("a11") {
		sizes := []int{64, 512, 2048}
		if *quick {
			sizes = []int{64}
		}
		rows, err := experiment.AblationBatching(cfg.BaseSeed, *workers, sizes)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderBatching(rows))
		fmt.Println()
	}
	//lint:allow walltime operator-facing elapsed-time report, not simulation state
	fmt.Fprintf(os.Stderr, "athena-sim: done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// dumpHistogram is a histogram snapshot without the float running sum.
// Bucket counts are integers and accumulate commutatively, so they are
// identical for any worker count; the sum is a float reduced in execution
// order, whose ulp-level wobble would break byte-for-byte diffs.
type dumpHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
}

// dumpOutcome is the full outcome of a dump run in a shape whose JSON
// encoding is deterministic: fixed field order, map keys sorted by
// encoding/json, no order-sensitive floats.
type dumpOutcome struct {
	Scheme          string                   `json:"scheme"`
	Workers         string                   `json:"workers"`
	Seed            int64                    `json:"seed"`
	QueriesIssued   int                      `json:"queriesIssued"`
	QueriesResolved int                      `json:"queriesResolved"`
	ResolvedTrue    int                      `json:"resolvedTrue"`
	ResolvedFalse   int                      `json:"resolvedFalse"`
	TotalBytes      int64                    `json:"totalBytes"`
	MeanLatencyNS   int64                    `json:"meanLatencyNs"`
	Node            athena.NodeStats         `json:"node"`
	Counters        map[string]int64         `json:"counters"`
	Gauges          map[string]int64         `json:"gauges"`
	Histograms      map[string]dumpHistogram `json:"histograms"`
}

// runDump executes a fixed-seed cluster scenario on the parallel kernel —
// gossip membership, churn, the most timing-sensitive configuration — and
// prints the complete outcome as JSON. The output is byte-identical for
// any workers value and any GOMAXPROCS; CI diffs it across both axes, with
// data-plane batching both off and on (-batch-window).
func runDump(seed int64, workers int, batchWindow time.Duration) error {
	wcfg := athena.DefaultWorkload()
	wcfg.GridRows, wcfg.GridCols = 6, 6
	wcfg.Nodes = 24
	wcfg.QueriesPerNode = 3
	wcfg.Seed = seed
	wcfg.FastRatio = 0.4
	s, err := athena.GenerateScenario(wcfg)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	cluster, err := athena.NewCluster(s, athena.ClusterConfig{
		Scheme:            athena.SchemeLVF,
		Workers:           workers,
		HeartbeatInterval: 2 * time.Second,
		HeartbeatMiss:     3,
		GossipFanout:      2,
		ChurnEvents:       3,
		ChurnOutage:       30 * time.Second,
		CoalesceWindow:    batchWindow,
	})
	if err != nil {
		return err
	}
	out, err := cluster.Run()
	if err != nil {
		return err
	}
	dump := dumpOutcome{
		Scheme:          out.Scheme.String(),
		Workers:         "any", // the point: this field must not vary with -workers
		Seed:            seed,
		QueriesIssued:   out.QueriesIssued,
		QueriesResolved: out.QueriesResolved,
		ResolvedTrue:    out.ResolvedTrue,
		ResolvedFalse:   out.ResolvedFalse,
		TotalBytes:      out.TotalBytes,
		MeanLatencyNS:   int64(out.MeanLatency),
		Node:            out.Node,
		Counters:        out.Metrics.Counters,
		Gauges:          out.Metrics.Gauges,
		Histograms:      make(map[string]dumpHistogram, len(out.Metrics.Histograms)),
	}
	for name, h := range out.Metrics.Histograms {
		dump.Histograms[name] = dumpHistogram{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// runSmoke runs the n=2048 gossip+sharding membership fleet on the
// parallel kernel and prints the measured row as JSON — the CI scale
// job's artifact. -quick trims the fleet to n=512 for local checks.
func runSmoke(seed int64, workers int, quick bool) error {
	n := 2048
	if quick {
		n = 512
	}
	if workers < 1 {
		workers = 1
	}
	//lint:allow walltime operator-facing elapsed-time report, not simulation state
	start := time.Now()
	row, err := experiment.RunMembershipOpts(n, experiment.MembershipOpts{
		Fanout:        2,
		Seed:          seed,
		Workers:       workers,
		Shards:        4 * n,
		ShardReplicas: 3,
	})
	if err != nil {
		return err
	}
	out := struct {
		Nodes            int     `json:"nodes"`
		Workers          int     `json:"workers"`
		Seed             int64   `json:"seed"`
		CtlMsgsPerNode   float64 `json:"ctlMsgsPerNodePerInterval"`
		CtlBytesPerNode  float64 `json:"ctlBytesPerNodePerInterval"`
		DetectionSeconds float64 `json:"detectionSeconds"`
		FalseDrops       float64 `json:"falseDrops"`
		WallSeconds      float64 `json:"wallSeconds"`
	}{
		Nodes:            row.Nodes,
		Workers:          workers,
		Seed:             seed,
		CtlMsgsPerNode:   row.CtlMsgs,
		CtlBytesPerNode:  row.CtlBytes,
		DetectionSeconds: row.Detection.Seconds(),
		FalseDrops:       row.FalseDrops,
		//lint:allow walltime operator-facing elapsed-time report, not simulation state
		WallSeconds: time.Since(start).Seconds(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Command athena-sim regenerates the paper's evaluation (Section VII):
//
//	athena-sim -fig 2          # Figure 2: resolution ratio vs dynamics
//	athena-sim -fig 3          # Figure 3: bandwidth by scheme
//	athena-sim -fig a1         # Ablation: label sharing vs trust
//	athena-sim -fig a2         # Ablation: prefetch on/off
//	athena-sim -fig a3         # Ablation: cache capacity
//	athena-sim -fig a4         # Ablation: infomax triage under overload
//	athena-sim -fig a5         # Ablation: sensor noise vs corroboration cost
//	athena-sim -fig a6         # Ablation: link loss with/without retries
//	athena-sim -fig a7         # Ablation: node churn with/without live membership
//	athena-sim -fig a8         # Ablation: membership control plane, flood vs gossip
//	athena-sim -fig a9         # Ablation: directory sharding, memory/sync vs full replica
//	athena-sim -fig all        # everything
//
// Use -reps, -seed, -schemes and -quick to trade fidelity for time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"athena"
	"athena/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "athena-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 2, 3, a1, a2, a3, a4, a5, a6, a7, a8, a9, all")
		reps    = flag.Int("reps", 10, "repetitions per data point")
		seed    = flag.Int64("seed", 1, "base random seed")
		schemes = flag.String("schemes", "cmp,slt,lcf,lvf,lvfl", "comma-separated schemes")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables (figures 2 and 3)")
		quick   = flag.Bool("quick", false, "smaller workload for a fast smoke run")
	)
	flag.Parse()

	cfg := experiment.Default()
	cfg.BaseSeed = *seed
	cfg.Reps = *reps
	cfg.Schemes = nil
	for _, s := range strings.Split(*schemes, ",") {
		scheme, err := athena.ParseScheme(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		cfg.Schemes = append(cfg.Schemes, scheme)
	}
	if *quick {
		cfg.Reps = min(cfg.Reps, 3)
		cfg.Workload.GridRows, cfg.Workload.GridCols = 5, 5
		cfg.Workload.Nodes = 14
		cfg.Workload.QueriesPerNode = 2
	}

	want := func(name string) bool { return *fig == name || *fig == "all" }
	//lint:allow walltime operator-facing elapsed-time report, not simulation state
	start := time.Now()

	if want("2") {
		points, err := experiment.Fig2(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(experiment.CSV(points))
		} else {
			fmt.Print(experiment.RenderFig2(points))
		}
		fmt.Println()
	}
	if want("3") {
		points, err := experiment.Fig3(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(experiment.CSV(points))
		} else {
			fmt.Print(experiment.RenderFig3(points))
		}
		fmt.Println()
	}
	if want("a1") {
		rows, err := experiment.AblationLabelSharing(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A1: label sharing vs trusted-annotator fraction (40% fast)",
			"label answers", rows))
		fmt.Println()
	}
	if want("a2") {
		rows, err := experiment.AblationPrefetch(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A2: prefetch on/off under lvf (40% fast)", "", rows))
		fmt.Println()
	}
	if want("a3") {
		rows, err := experiment.AblationCache(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A3: content-store capacity under lvf (40% fast)", "", rows))
		fmt.Println()
	}
	if want("a4") {
		fmt.Print(experiment.RenderInfomax(experiment.AblationInfomax(cfg.BaseSeed, cfg.Reps)))
		fmt.Println()
	}
	if want("a5") {
		rows, err := experiment.AblationNoise(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A5: sensor noise with 95% corroboration under lvf (40% fast)",
			"", rows))
		fmt.Println()
	}
	if want("a6") {
		rows, err := experiment.AblationFailure(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A6: link loss with/without the retry layer (40% fast)",
			"retransmits", rows))
		fmt.Println()
	}
	if want("a7") {
		rows, err := experiment.AblationChurn(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblation(
			"Ablation A7: node churn with live membership vs static directory (lvf, 40% fast)",
			"evictions", rows))
		fmt.Println()
	}
	if want("a8") {
		// The flood protocol's per-interval cost is O(n²) messages, so the
		// n=512 cell dominates the sweep's runtime; -quick drops it.
		sizes := []int{8, 32, 128, 512}
		if *quick {
			sizes = []int{8, 32, 128}
		}
		rows, err := experiment.AblationMembership(cfg, sizes)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderMembership(rows))
		fmt.Println()
	}
	if want("a9") {
		// The structural rig is cheap; -quick trims only the 10^5 cells.
		sources := []int{1_000, 10_000, 100_000}
		if *quick {
			sources = []int{1_000, 10_000}
		}
		rows, err := experiment.AblationShardScale(sources, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderShardScale(rows))
		fmt.Println()
	}
	//lint:allow walltime operator-facing elapsed-time report, not simulation state
	fmt.Fprintf(os.Stderr, "athena-sim: done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report on stdout, so `make bench` can commit a machine-readable
// baseline (BENCH_core.json) and CI can archive per-commit results.
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_core.json
//
// Each benchmark line ("BenchmarkX-8  100  123 ns/op  4.5 MB  0.99 resolution")
// becomes {"name", "iterations", "metrics": {"ns/op": ..., "MB": ..., ...}};
// non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's full name with the GOMAXPROCS suffix
	// stripped (BenchmarkScheme/lvf-8 -> BenchmarkScheme/lvf).
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: ns/op, B/op, allocs/op, and any custom
	// b.ReportMetric units (MB, resolution, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document written to stdout.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans bench output for result lines. A result line is
//
//	BenchmarkName[-procs] <iterations> (<value> <unit>)+
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	if rep.Benchmarks == nil {
		rep.Benchmarks = []Benchmark{}
	}
	return rep, nil
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, one value-unit pair.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripProcs(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends, so
// baselines compare across machines with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: athena
cpu: AMD EPYC 7R32
BenchmarkScheme/cmp-8         	     100	  11484615 ns/op	        35.56 MB	         1.000 resolution
BenchmarkScheme/lvf-8         	      93	  12031702 ns/op	        28.90 MB	         0.987 resolution	   52311 B/op	     612 allocs/op
BenchmarkCounterInc-8         	829000000	         1.441 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	athena	4.322s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	cmp := rep.Benchmarks[0]
	if cmp.Name != "BenchmarkScheme/cmp" {
		t.Errorf("name = %q, want procs suffix stripped", cmp.Name)
	}
	if cmp.Iterations != 100 {
		t.Errorf("iterations = %d, want 100", cmp.Iterations)
	}
	want := map[string]float64{"ns/op": 11484615, "MB": 35.56, "resolution": 1.0}
	for unit, v := range want {
		if got := cmp.Metrics[unit]; got != v {
			t.Errorf("cmp %s = %v, want %v", unit, got, v)
		}
	}

	lvf := rep.Benchmarks[1]
	if got := lvf.Metrics["allocs/op"]; got != 612 {
		t.Errorf("lvf allocs/op = %v, want 612 (benchmem pairs must parse)", got)
	}
	if got := lvf.Metrics["resolution"]; got != 0.987 {
		t.Errorf("lvf resolution = %v, want 0.987", got)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `goos: linux
Benchmark	notanumber	1 ns/op
BenchmarkNoPairs-8	500
--- BENCH: BenchmarkFoo-8
    bench_test.go:12: note
FAIL
`
	rep, err := parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkScheme/lvf-8": "BenchmarkScheme/lvf",
		"BenchmarkPlain-16":     "BenchmarkPlain",
		"BenchmarkNoSuffix":     "BenchmarkNoSuffix",
		"BenchmarkDash-v2":      "BenchmarkDash-v2",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

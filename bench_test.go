package athena_test

// Benchmark harness: one benchmark per paper figure/table plus the
// ablations of DESIGN.md. Each iteration runs a complete (reduced-scale)
// deterministic simulation; reported MB/op-style metrics come from custom
// b.ReportMetric calls:
//
//	resolution  - query resolution ratio (Figure 2's y-axis)
//	MB          - total network traffic (Figure 3's y-axis)
//
// Full-scale regeneration (Section VII parameters, 10 repetitions) is
// done by `go run ./cmd/athena-sim -fig all`.

import (
	"runtime"
	"testing"
	"time"

	"athena"
	"athena/internal/experiment"
)

// benchWorkload is a reduced Section VII scenario sized so one simulation
// runs in well under a second.
func benchWorkload() athena.WorkloadConfig {
	cfg := athena.DefaultWorkload()
	cfg.GridRows, cfg.GridCols = 5, 5
	cfg.Nodes = 14
	cfg.QueriesPerNode = 2
	return cfg
}

func runScheme(b *testing.B, scheme athena.Scheme, dynamics float64) {
	b.Helper()
	runSchemeCluster(b, athena.ClusterConfig{Scheme: scheme}, dynamics)
}

func runSchemeCluster(b *testing.B, ccfg athena.ClusterConfig, dynamics float64) {
	b.Helper()
	cfg := benchWorkload()
	cfg.FastRatio = dynamics
	var ratio float64
	var bytes int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		s, err := athena.GenerateScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cluster, err := athena.NewCluster(s, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		out, err := cluster.Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio += out.ResolutionRatio()
		bytes += out.TotalBytes
	}
	b.ReportMetric(ratio/float64(b.N), "resolution")
	b.ReportMetric(float64(bytes)/float64(b.N)/1e6, "MB")
}

// BenchmarkScheme runs one reduced-scale simulation per scheme with the
// metrics registry enabled (the cluster default). This is the family the
// BENCH_core.json baseline tracks for hot-path regressions.
func BenchmarkScheme(b *testing.B) {
	for _, scheme := range athena.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			runScheme(b, scheme, 0.4)
		})
	}
}

// BenchmarkSchemeNoMetrics is the same workload with instrumentation
// disabled (nil registry, no-op instruments); any delta against
// BenchmarkScheme is the cost of the metrics layer.
func BenchmarkSchemeNoMetrics(b *testing.B) {
	for _, scheme := range athena.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			runSchemeCluster(b, athena.ClusterConfig{Scheme: scheme, DisableMetrics: true}, 0.4)
		})
	}
}

// BenchmarkFig2 regenerates Figure 2's series: resolution ratio per scheme
// at each environment-dynamics level.
func BenchmarkFig2(b *testing.B) {
	for _, scheme := range athena.Schemes() {
		for _, dynamics := range []float64{0, 0.4, 0.8} {
			b.Run(scheme.String()+"/dynamics="+fmtDyn(dynamics), func(b *testing.B) {
				runScheme(b, scheme, dynamics)
			})
		}
	}
}

// BenchmarkFig3 regenerates Figure 3's bars: total bandwidth per scheme at
// 40% fast-changing objects.
func BenchmarkFig3(b *testing.B) {
	for _, scheme := range athena.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			runScheme(b, scheme, 0.4)
		})
	}
}

// BenchmarkAblationLabelSharing (A1) measures lvfl under full trust vs
// lvf, the label-sharing headline.
func BenchmarkAblationLabelSharing(b *testing.B) {
	for _, scheme := range []athena.Scheme{athena.SchemeLVF, athena.SchemeLVFL} {
		b.Run(scheme.String(), func(b *testing.B) {
			runScheme(b, scheme, 0.4)
		})
	}
}

// BenchmarkAblationPrefetch (A2) measures lvf with prefetch pushes on.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, enable := range []bool{false, true} {
		name := "off"
		if enable {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchWorkload()
			cfg.FastRatio = 0.4
			var bytes int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				s, err := athena.GenerateScenario(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cluster, err := athena.NewCluster(s, athena.ClusterConfig{
					Scheme:         athena.SchemeLVF,
					EnablePrefetch: enable,
				})
				if err != nil {
					b.Fatal(err)
				}
				out, err := cluster.Run()
				if err != nil {
					b.Fatal(err)
				}
				bytes += out.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1e6, "MB")
		})
	}
}

// BenchmarkAblationCache (A3) measures lvf across content-store sizes.
func BenchmarkAblationCache(b *testing.B) {
	for _, tc := range []struct {
		name string
		cap  int64
	}{
		{"unbounded", -1},
		{"4MB", 4 << 20},
		{"off", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchWorkload()
			cfg.FastRatio = 0.4
			var bytes int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				s, err := athena.GenerateScenario(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cluster, err := athena.NewCluster(s, athena.ClusterConfig{
					Scheme:     athena.SchemeLVF,
					CacheBytes: tc.cap,
				})
				if err != nil {
					b.Fatal(err)
				}
				out, err := cluster.Run()
				if err != nil {
					b.Fatal(err)
				}
				bytes += out.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1e6, "MB")
		})
	}
}

// BenchmarkAblationInfomax (A4) measures the overload-triage utilities.
func BenchmarkAblationInfomax(b *testing.B) {
	var fifo, info float64
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationInfomax(int64(i+1), 3)
		for _, r := range rows {
			switch r.Label {
			case "fifo":
				fifo += r.Utility
			case "infomax":
				info += r.Utility
			}
		}
	}
	b.ReportMetric(fifo/float64(b.N), "fifo-utility")
	b.ReportMetric(info/float64(b.N), "infomax-utility")
}

// BenchmarkDecisionEngine measures the pure decision-engine step loop —
// the per-evidence overhead of decision-driven execution.
func BenchmarkDecisionEngine(b *testing.B) {
	dnf := athena.ToDNF(athena.MustParseExpr(
		"(a & b & c) | (d & e & f) | (g & h & i)"))
	meta := athena.MetaTable{}
	for _, l := range dnf.Labels() {
		meta[l] = athena.Meta{Cost: 1, ProbTrue: 0.7, Validity: time.Minute}
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := athena.NewDecision("bench", dnf, now.Add(time.Minute), meta)
		for {
			label, ok := d.NextLabel(now)
			if !ok {
				break
			}
			if err := d.Set(label, i%3 != 0, now.Add(time.Minute), "s", "a"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fmtDyn(d float64) string {
	switch d {
	case 0:
		return "0.0"
	case 0.4:
		return "0.4"
	case 0.8:
		return "0.8"
	default:
		return "x"
	}
}

// BenchmarkMembershipControlPlane (A8) measures the steady-state
// membership control plane at n=64 — messages and bytes per node per
// heartbeat interval — for the flooded-heartbeat protocol vs SWIM gossip.
// The gossip figure must hold at or below a quarter of the flood figure;
// the committed BENCH_core.json baseline tracks both.
func BenchmarkMembershipControlPlane(b *testing.B) {
	for _, tc := range []struct {
		name   string
		fanout int
	}{
		{"flood", 0},
		{"gossip", 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var msgs, bytes float64
			for i := 0; i < b.N; i++ {
				row, err := experiment.RunMembership(64, tc.fanout, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				msgs += row.CtlMsgs
				bytes += row.CtlBytes
			}
			b.ReportMetric(msgs/float64(b.N), "ctl-msgs/node/iv")
			b.ReportMetric(bytes/float64(b.N), "ctl-B/node/iv")
		})
	}
}

// BenchmarkDirectoryMemory measures directory entries held per node and
// per-exchange anti-entropy bytes, sharded vs full-replica, on A9's
// structural rig (n=64 nodes, 10^4 sources, 256 shards, rf=3). Both
// reported metrics are deterministic, so the committed baseline doubles
// as a retention-regression gate (see ci.sh).
func BenchmarkDirectoryMemory(b *testing.B) {
	const (
		nodes   = 64
		sources = 10_000
		shards  = 256
		rf      = 3
	)
	for _, tc := range []struct {
		name    string
		sharded bool
	}{
		{"full", false},
		{"sharded", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var entries, sync float64
			for i := 0; i < b.N; i++ {
				row, err := experiment.RunShardScale(nodes, sources, shards, rf)
				if err != nil {
					b.Fatal(err)
				}
				if tc.sharded {
					entries += row.EntriesPerNode
					sync += row.SyncBytes
				} else {
					entries += float64(row.Sources)
					sync += row.FullSyncBytes
				}
			}
			b.ReportMetric(entries/float64(b.N), "entries/node")
			b.ReportMetric(sync/float64(b.N), "sync-B/exch")
		})
	}
}

// BenchmarkSimKernel measures the parallel event kernel on the A10
// synthetic workload at n=512: one complete 2-virtual-second simulation
// per iteration. The w1 variant is the single-executor path whose
// allocs/op the ci.sh gate pins — events are pooled, so the allocation
// count is the deterministic setup cost and any growth means the hot
// path started allocating. The wN variant (NumCPU executors) reports
// parallel throughput; its ns/op is informational only on shared
// runners, and its event counts must match w1 exactly (worker count
// never changes results — the A10 rig's own tests pin this).
func BenchmarkSimKernel(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"w1", 1},
		{"wN", runtime.NumCPU()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var evps float64
			for i := 0; i < b.N; i++ {
				row, err := experiment.RunKernelScale(512, tc.workers, 1)
				if err != nil {
					b.Fatal(err)
				}
				evps += row.EventsPerSec
			}
			b.ReportMetric(evps/float64(b.N), "events/sec")
		})
	}
}

// BenchmarkAblationNoise (A5) measures corroboration cost under sensor
// noise.
func BenchmarkAblationNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.2} {
		name := "clean"
		if noise > 0 {
			name = "noisy"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchWorkload()
			cfg.FastRatio = 0.4
			var ratio float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				s, err := athena.GenerateScenario(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cluster, err := athena.NewCluster(s, athena.ClusterConfig{
					Scheme:           athena.SchemeLVF,
					SensorNoise:      noise,
					ConfidenceTarget: 0.95,
				})
				if err != nil {
					b.Fatal(err)
				}
				out, err := cluster.Run()
				if err != nil {
					b.Fatal(err)
				}
				ratio += out.ResolutionRatio()
			}
			b.ReportMetric(ratio/float64(b.N), "resolution")
		})
	}
}

// BenchmarkBatchedFetch measures the data-plane batching layer (A11) on
// a reduced incast rig: n=64 nodes behind one gateway, fan-in 8, with
// coalescing off and on. The on variant's frames/node is deterministic
// (single-worker kernel), so the committed baseline doubles as a
// coalescing-regression gate (see ci.sh): growth means the layer stopped
// merging traffic it used to merge.
func BenchmarkBatchedFetch(b *testing.B) {
	for _, tc := range []struct {
		name   string
		window time.Duration
	}{
		{"off", 0},
		{"on", 10 * time.Millisecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var frames, bytes, batch float64
			for i := 0; i < b.N; i++ {
				row, err := experiment.RunBatching(64, 8, 1, tc.window, 1)
				if err != nil {
					b.Fatal(err)
				}
				frames += row.MsgsPerNode
				bytes += row.BytesPerNode
				batch += row.MeanBatch
			}
			b.ReportMetric(frames/float64(b.N), "frames/node")
			b.ReportMetric(bytes/float64(b.N)/1e6, "MB/node")
			b.ReportMetric(batch/float64(b.N), "batch")
		})
	}
}

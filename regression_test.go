package athena_test

import (
	"testing"
	"time"

	"athena"
)

// TestFloodMembershipUnchangedByGossipLayer pins the exact behaviour of
// the static-directory and flood-membership configurations to the numbers
// they produced before the SWIM gossip protocol existed. The gossip layer
// rides the same wire types and call sites, so any accidental change to
// flood-mode traffic — an extra field counted in a wireSize, a reordered
// send, a sync triggered differently — shows up here as a byte delta.
func TestFloodMembershipUnchangedByGossipLayer(t *testing.T) {
	golden := []struct {
		hb         time.Duration
		churn      int
		bytes      int64
		resolved   int
		issued     int
		evictions  int
		heartbeats int
		syncs      int
	}{
		{0, 0, 67970515, 22, 24, 0, 0, 0},
		{2 * time.Second, 0, 70188115, 22, 24, 0, 462, 0},
		{2 * time.Second, 2, 65670350, 24, 24, 50, 462, 6},
	}
	for _, g := range golden {
		cfg := athena.DefaultWorkload()
		cfg.GridRows, cfg.GridCols = 5, 5
		cfg.Nodes = 14
		cfg.QueriesPerNode = 2
		cfg.Seed = 7
		cfg.FastRatio = 0.4
		s, err := athena.GenerateScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := athena.NewCluster(s, athena.ClusterConfig{
			Scheme:            athena.SchemeLVF,
			HeartbeatInterval: g.hb,
			HeartbeatMiss:     3,
			ChurnEvents:       g.churn,
			ChurnOutage:       30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := cluster.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.TotalBytes != g.bytes {
			t.Errorf("hb=%v churn=%d: TotalBytes = %d, want %d (flood-mode traffic changed)",
				g.hb, g.churn, out.TotalBytes, g.bytes)
		}
		if out.QueriesResolved != g.resolved || out.QueriesIssued != g.issued {
			t.Errorf("hb=%v churn=%d: resolved/issued = %d/%d, want %d/%d",
				g.hb, g.churn, out.QueriesResolved, out.QueriesIssued, g.resolved, g.issued)
		}
		if out.Node.Evictions != g.evictions || out.Node.HeartbeatsSent != g.heartbeats || out.Node.SyncExchanges != g.syncs {
			t.Errorf("hb=%v churn=%d: evictions/heartbeats/syncs = %d/%d/%d, want %d/%d/%d",
				g.hb, g.churn, out.Node.Evictions, out.Node.HeartbeatsSent, out.Node.SyncExchanges,
				g.evictions, g.heartbeats, g.syncs)
		}
	}
}

package athena

import (
	"athena/internal/learn"
	"athena/internal/workflow"
)

// Extension types: mission workflows with anticipation (Section VIII) and
// physical-model learning (Section VIII).
type (
	// Workflow is a flowchart of decision points; the system anticipates
	// upcoming decisions' evidence needs from it.
	Workflow = workflow.Workflow
	// WorkflowStep is one decision point.
	WorkflowStep = workflow.Step
	// WorkflowRunner walks a workflow one decision at a time.
	WorkflowRunner = workflow.Runner
	// WorkflowPath records one traversed decision.
	WorkflowPath = workflow.Path
	// Anticipated is a label an upcoming decision may need, with a
	// proximity weight.
	Anticipated = workflow.Anticipated

	// Estimator learns per-label validity intervals and success
	// probabilities from observations, refining the planner's MetaTable
	// over time.
	Estimator = learn.Estimator
	// Observation is one observed label value at an instant.
	Observation = learn.Observation
)

// NewWorkflow creates a workflow beginning at the named step.
func NewWorkflow(start string) *Workflow { return workflow.New(start) }

// NewWorkflowRunner starts walking a validated workflow.
func NewWorkflowRunner(wf *Workflow) (*WorkflowRunner, error) {
	return workflow.NewRunner(wf)
}

// NewEstimator creates a model estimator keeping at most maxHistory
// observations per label (<= 0 for the default).
func NewEstimator(maxHistory int) *Estimator { return learn.NewEstimator(maxHistory) }

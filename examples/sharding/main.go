// Sharding: sublinear directory memory with routed lookups.
//
// A 16-camera precinct runs gossip membership with the directory
// partitioned into name-prefix shards, each replicated on two nodes.
// Every node keeps full records only for the shards it owns (plus its own
// advertisement) instead of the whole fleet, so per-node directory memory
// drops to roughly shards-owned/shards of the full replica. When the
// operations node decides on a label whose shard it does not own, the
// query path sends a ShardLookup to the shard's replica set, caches the
// reply, and resolves as if the directory were fully replicated.
//
// Run with: go run ./examples/sharding
package main

import (
	"fmt"
	"log"
	"time"

	"athena"
)

// world is the ground truth the cameras' annotators read.
type world struct{}

func (world) LabelValue(string, time.Time) bool { return true }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const cams = 16

func run() error {
	start := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)
	if err := net.EnableMembership(time.Second, 3); err != nil {
		return err
	}
	if err := net.EnableGossip(2, 42); err != nil {
		return err
	}
	// 8 shards, 2 replicas each: with 16 nodes, each node owns roughly
	// one shard — a sixteenth of the full directory, not all of it.
	if err := net.EnableSharding(8, 2); err != nil {
		return err
	}

	// A ring of precinct cameras: every lookup to a non-neighbor is a
	// genuine multi-hop exchange.
	const mbps = 125_000.0
	ids := make([]string, cams)
	for i := range ids {
		ids[i] = fmt.Sprintf("cam%02d", i)
	}
	for i, id := range ids {
		next := ids[(i+1)%cams]
		if err := net.AddLink(id, next, mbps, 2*time.Millisecond); err != nil {
			return err
		}
	}

	for i, id := range ids {
		// Eight street prefixes spread the namespace across shards.
		desc := &athena.SourceDescriptor{
			Name:     athena.MustParseName(fmt.Sprintf("/precinct/street%d/%s", i%8, id)),
			Size:     150_000,
			Validity: 2 * time.Minute,
			Labels:   []string{fmt.Sprintf("clear%02d", i)},
			Source:   id,
			ProbTrue: 0.5,
		}
		cfg := athena.SimNodeConfig{
			ID: id, Scheme: athena.SchemeLVF, World: world{}, Source: desc,
		}
		if err := net.AddNode(cfg); err != nil {
			return err
		}
	}

	// Let gossip converge and the first shard refresh thin the replicas.
	if err := net.Run(10 * time.Second); err != nil {
		return err
	}

	fmt.Println("--- directory footprint after sharding (full replica = 16 entries) ---")
	totalHeld := 0
	for _, id := range ids {
		node, err := net.Node(id)
		if err != nil {
			return err
		}
		info, ok := node.ShardInfo()
		if !ok {
			return fmt.Errorf("%s: sharding not enabled", id)
		}
		totalHeld += info.EntriesHeld
		if info.EntriesHeld >= cams {
			return fmt.Errorf("%s still holds a full replica (%d entries)", id, info.EntriesHeld)
		}
	}
	fmt.Printf("mean entries held per node: %.1f of %d advertised sources\n",
		float64(totalHeld)/cams, cams)

	// The operations node decides on the far side of the ring: its
	// labels' shards live elsewhere, so the query routes a lookup.
	origin, err := net.Node(ids[0])
	if err != nil {
		return err
	}
	expr := athena.ToDNF(athena.MustParseExpr("clear08"))
	if _, err := origin.QueryInit(expr, 30*time.Second); err != nil {
		return err
	}
	if err := net.Run(40 * time.Second); err != nil {
		return err
	}

	res := origin.Results()
	if len(res) == 0 {
		return fmt.Errorf("query did not finish")
	}
	lookups, served := 0, 0
	for _, id := range ids {
		node, err := net.Node(id)
		if err != nil {
			return err
		}
		st := node.Stats()
		lookups += st.ShardLookups
		served += st.ShardServed
	}
	fmt.Printf("\ndecision %v in %v; %d shard lookups routed, %d served by shard owners\n",
		res[0].Status,
		res[0].Finished.Sub(res[0].Issued).Round(100*time.Millisecond),
		lookups, served)
	if res[0].Status != athena.ResolvedTrue {
		return fmt.Errorf("expected resolved-true, got %v", res[0].Status)
	}
	return nil
}

package main

import "testing"

// TestDemo runs the sharded-precinct demo end to end, so `make ci-short`
// exercises the routed-lookup path through the public simulation API.
func TestDemo(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// Routefinding: the paper's post-earthquake scenario (Sections II-A and
// VI), distributed. An emergency team at the hospital must move a patient
// to the medical camp over route A-B-C or route D-E-F. Road-side cameras
// at two relay sites supply the evidence; the decision logic is
//
//	(viableA & viableB & viableC) | (viableD & viableE & viableF)
//
// The example runs the same decision twice under label sharing (lvfl):
// the second query — issued by a different team at the relay site — is
// answered with tiny signed label records instead of megabyte pictures,
// demonstrating the "orders of magnitude" savings of Section VI-D.
//
// Run with: go run ./examples/routefinding
package main

import (
	"fmt"
	"log"
	"time"

	"athena"
)

// world is the post-earthquake ground truth: segment B collapsed, route
// D-E-F survived.
type world struct{}

func (world) LabelValue(label string, _ time.Time) bool {
	return label != "viableB"
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)

	// Topology: hospital -- relay -- north-cams, and relay -- south-cams.
	// 1 Mbps disaster-area links.
	const mbps = 125_000.0
	for _, link := range [][2]string{
		{"hospital", "relay"},
		{"relay", "north-cams"},
		{"relay", "south-cams"},
	} {
		if err := net.AddLink(link[0], link[1], mbps, 5*time.Millisecond); err != nil {
			return err
		}
	}

	// Camera stations: the north station sees route A-B-C, the south
	// station sees route D-E-F. Pictures are ~800 KB and stay valid for
	// two minutes (rubble does not move fast, but aftershocks happen).
	north := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/city/north/cam"),
		Size:     800_000,
		Validity: 2 * time.Minute,
		Labels:   []string{"viableA", "viableB", "viableC"},
		Source:   "north-cams",
		ProbTrue: 0.7,
	}
	south := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/city/south/cam"),
		Size:     700_000,
		Validity: 2 * time.Minute,
		Labels:   []string{"viableD", "viableE", "viableF"},
		Source:   "south-cams",
		ProbTrue: 0.7,
	}

	for _, cfg := range []athena.SimNodeConfig{
		{ID: "hospital", Scheme: athena.SchemeLVFL, World: world{}},
		{ID: "relay", Scheme: athena.SchemeLVFL, World: world{}},
		{ID: "north-cams", Scheme: athena.SchemeLVFL, World: world{}, Source: north},
		{ID: "south-cams", Scheme: athena.SchemeLVFL, World: world{}, Source: south},
	} {
		if err := net.AddNode(cfg); err != nil {
			return err
		}
	}

	expr := athena.ToDNF(athena.MustParseExpr(
		"(viableA & viableB & viableC) | (viableD & viableE & viableF)"))

	// First decision: issued at the hospital.
	hospital, err := net.Node("hospital")
	if err != nil {
		return err
	}
	if _, err := hospital.QueryInit(expr, time.Minute); err != nil {
		return err
	}
	if err := net.Run(time.Minute); err != nil {
		return err
	}
	firstBytes := net.BytesSent()
	res := hospital.Results()
	if len(res) == 0 {
		return fmt.Errorf("hospital decision did not finish")
	}
	fmt.Printf("hospital decision: %s in %v, moving %0.1f MB of pictures\n",
		res[0].Status, res[0].Finished.Sub(res[0].Issued).Round(time.Millisecond),
		float64(firstBytes)/1e6)
	fmt.Println("  (route A-B-C ruled out — segment B collapsed; route D-E-F viable)")

	// Second decision, same logic, issued at the relay. Labels computed
	// by the hospital were propagated back toward the cameras and cached;
	// the relay gets label records, not pictures.
	relay, err := net.Node("relay")
	if err != nil {
		return err
	}
	if _, err := relay.QueryInit(expr, time.Minute); err != nil {
		return err
	}
	if err := net.Run(time.Minute); err != nil {
		return err
	}
	secondBytes := net.BytesSent() - firstBytes
	res = relay.Results()
	if len(res) == 0 {
		return fmt.Errorf("relay decision did not finish")
	}
	fmt.Printf("relay decision:    %s in %v, moving %0.4f MB (label sharing)\n",
		res[0].Status, res[0].Finished.Sub(res[0].Issued).Round(time.Millisecond),
		float64(secondBytes)/1e6)
	if secondBytes > 0 {
		fmt.Printf("  label sharing saved %.0fx over refetching the pictures\n",
			float64(firstBytes)/float64(secondBytes))
	}
	return nil
}

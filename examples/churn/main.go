// Churn: surviving source death with the live-membership layer.
//
// A base station decides whether an intersection is clear. Two cameras
// advertise the same label; camA is cheaper, so the planner fetches from
// it first. The instant the query is issued camA dies and stays dead. With
// live membership the survivors' failure detectors notice the silence,
// evict camA from their directory replicas, and the in-flight fetch is
// re-sourced to camB in time to beat the deadline. With the static
// directory the only recourse is the retransmission backoff ladder,
// which is far too slow for this deadline — the query expires.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"athena"
)

// world is the ground truth the cameras' annotators read.
type world struct{}

func (world) LabelValue(string, time.Time) bool { return true }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("--- camA dies as the query is issued and never returns ---")
	for _, membership := range []bool{true, false} {
		if err := churnRun(membership); err != nil {
			return err
		}
	}
	return nil
}

// build wires a star: base -- hub -- {camA, camB}. Both cameras cover
// intersectionClear; camA's smaller object makes it the preferred source.
func build(membership bool) (*athena.SimNetwork, *athena.Node, error) {
	start := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)
	if membership {
		if err := net.EnableMembership(2*time.Second, 3); err != nil {
			return nil, nil, err
		}
	}

	const mbps = 125_000.0
	for _, link := range [][2]string{{"base", "hub"}, {"hub", "camA"}, {"hub", "camB"}} {
		if err := net.AddLink(link[0], link[1], mbps, 5*time.Millisecond); err != nil {
			return nil, nil, err
		}
	}

	descFor := func(id string, size int64) *athena.SourceDescriptor {
		return &athena.SourceDescriptor{
			Name:     athena.MustParseName("/city/intersection/" + id),
			Size:     size,
			Validity: 2 * time.Minute,
			Labels:   []string{"intersectionClear"},
			Source:   id,
			ProbTrue: 0.5,
		}
	}
	for _, cfg := range []athena.SimNodeConfig{
		{ID: "base", Scheme: athena.SchemeLVF, World: world{}},
		{ID: "hub", Scheme: athena.SchemeLVF, World: world{}},
		{ID: "camA", Scheme: athena.SchemeLVF, World: world{}, Source: descFor("camA", 100_000)},
		{ID: "camB", Scheme: athena.SchemeLVF, World: world{}, Source: descFor("camB", 200_000)},
	} {
		if err := net.AddNode(cfg); err != nil {
			return nil, nil, err
		}
	}
	base, err := net.Node("base")
	if err != nil {
		return nil, nil, err
	}
	return net, base, nil
}

// churnRun kills camA as the query is issued and reports
// how the base fared: whether it evicted the dead source, who its
// directory now prefers for the label, and whether the decision beat
// its deadline.
func churnRun(membership bool) error {
	net, base, err := build(membership)
	if err != nil {
		return err
	}
	if err := net.ScheduleNodeOutage("camA", net.Now(), time.Hour); err != nil {
		return err
	}

	expr := athena.ToDNF(athena.MustParseExpr("intersectionClear"))
	if _, err := base.QueryInit(expr, 30*time.Second); err != nil {
		return err
	}
	if err := net.Run(40 * time.Second); err != nil {
		return err
	}

	res := base.Results()
	if len(res) == 0 {
		return fmt.Errorf("query did not finish")
	}
	mode := "membership on "
	if !membership {
		mode = "membership off"
	}
	fmt.Printf("%s  ->  %-12v (%v elapsed, %d evictions, preferred source now %q)\n",
		mode, res[0].Status,
		res[0].Finished.Sub(res[0].Issued).Round(100*time.Millisecond),
		base.Stats().Evictions,
		base.Directory().SourceForLabel("intersectionClear", nil))

	// The fleet-wide metrics registry tells the same story in numbers:
	// heartbeats flowed (membership on), the dead camera was evicted, and
	// retry timeouts fired while the fetch was stuck on it.
	m := net.Metrics()
	fmt.Printf("%s      heartbeats=%d evictions=%d retry_timeouts=%d failovers=%d cache_hit_ratio=%.2f\n",
		mode,
		m.Counter("membership.heartbeats_sent"),
		m.Counter("membership.evictions"),
		m.Counter("retry.timeouts"),
		m.Counter("retry.failovers"),
		m.Ratio("cache.hits", "cache.misses"))
	return nil
}

// Mission: workflow-driven anticipation (Section VIII) plus model
// learning, end to end over a simulated network.
//
// A search-and-rescue team follows doctrine: ASSESS the scene; if safe,
// decide a ROUTE; then clear TRANSPORT. Because the workflow is known, the
// system anticipates the next decision's labels while the current one is
// still being made, and issues the successor query the moment the current
// decision lands — no idle gap between decision points. Meanwhile a model
// estimator watches the annotations stream by and learns which labels are
// volatile, refining the planner's metadata for the next mission.
//
// Run with: go run ./examples/mission
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"athena"
)

// missionWorld: the scene is safe, route A is blocked, route B is open,
// transport checks pass.
type missionWorld struct{}

func (missionWorld) LabelValue(label string, _ time.Time) bool {
	return label != "routeA"
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Doctrine as a workflow.
	wf := athena.NewWorkflow("assess")
	steps := []athena.WorkflowStep{
		{ID: "assess", Expr: toDNF("sceneSafe & accessOpen"), Deadline: 30 * time.Second,
			OnTrue: []string{"route"}},
		{ID: "route", Expr: toDNF("routeA | routeB"), Deadline: 30 * time.Second,
			OnTrue: []string{"transport"}},
		{ID: "transport", Expr: toDNF("fuelOK & driverReady"), Deadline: 30 * time.Second},
	}
	for _, s := range steps {
		if err := wf.AddStep(s); err != nil {
			return err
		}
	}
	runner, err := athena.NewWorkflowRunner(wf)
	if err != nil {
		return err
	}

	// 2. A small field network: the team node plus one sensor hub that
	// evidences everything.
	start := time.Date(2026, 1, 3, 6, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)
	if err := net.AddLink("team", "hub", 125_000, 5*time.Millisecond); err != nil {
		return err
	}
	hub := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/field/hub"),
		Size:     300_000,
		Validity: 90 * time.Second,
		Labels: []string{"sceneSafe", "accessOpen", "routeA", "routeB",
			"fuelOK", "driverReady"},
		Source:   "hub",
		ProbTrue: 0.7,
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "team", World: missionWorld{}}); err != nil {
		return err
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "hub", World: missionWorld{}, Source: hub}); err != nil {
		return err
	}
	team, err := net.Node("team")
	if err != nil {
		return err
	}

	// 3. The learning loop shadows every decision.
	estimator := athena.NewEstimator(0)

	// 4. Walk the workflow: issue each decision point's query, and while
	// waiting, print what anticipation would prefetch.
	for {
		step, ok := runner.Current()
		if !ok {
			break
		}
		ant, err := runner.Anticipate(2)
		if err != nil {
			return err
		}
		var warm []string
		for _, a := range ant {
			warm = append(warm, fmt.Sprintf("%s(%.2f)", a.Label, a.Weight))
		}
		fmt.Printf("%s step %-10s deciding %q\n", net.Now().Format("15:04:05"), step.ID, step.Expr)
		if len(warm) > 0 {
			fmt.Printf("          anticipating next: %s\n", strings.Join(warm, " "))
		}

		if _, err := team.QueryInit(step.Expr, step.Deadline); err != nil {
			return err
		}
		if err := net.Run(step.Deadline + 5*time.Second); err != nil {
			return err
		}
		results := team.Results()
		last := results[len(results)-1]
		outcome := last.Status == athena.ResolvedTrue
		fmt.Printf("          -> %s\n", last.Status)

		// Feed the estimator with what the decision engine observed.
		for _, l := range step.Expr.Labels() {
			estimator.Observe(athena.Observation{
				Label: l,
				Value: missionWorld{}.LabelValue(l, net.Now()),
				At:    net.Now(),
			})
		}

		if last.Status == athena.Expired {
			return fmt.Errorf("mission aborted: %s expired", step.ID)
		}
		cont, err := runner.Resolve(outcome, net.Now())
		if err != nil {
			return err
		}
		if !cont {
			break
		}
	}

	fmt.Println("\nmission complete; decision trail:")
	for _, p := range runner.History() {
		fmt.Printf("  %s %-10s -> %v\n", p.At.Format("15:04:05"), p.Step, p.Outcome)
	}
	fmt.Printf("total network traffic: %.2f MB\n", float64(net.BytesSent())/1e6)
	fmt.Printf("learned P(routeA) = %.2f, P(routeB) = %.2f\n",
		estimator.ProbTrue("routeA"), estimator.ProbTrue("routeB"))
	return nil
}

func toDNF(s string) athena.DNF { return athena.ToDNF(athena.MustParseExpr(s)) }

// Smartbuilding: event-triggered decision making (Section IV-B).
//
// A warehouse has a motion sensor, a door sensor, a badge reader, and a
// camera. After hours, a motion event triggers the decision "is this an
// intruder?":
//
//	intruder := motion & !badgeSeen & (doorForced | windowBroken)
//
// The example shows three Athena ingredients beyond plain fetching:
//
//   - event-triggered queries: the decision task is created when the
//     motion sensor fires, not on a schedule;
//   - negated predicates: !badgeSeen short-circuits the whole decision
//     the moment a valid badge is observed;
//   - corroboration of noisy evidence (annotate.Corroborator): the cheap
//     vibration sensor misreads 20% of the time, so the system gathers
//     votes until it is 95% confident before trusting "doorForced".
//
// Run with: go run ./examples/smartbuilding
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"athena"
	"athena/internal/annotate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2026, 1, 2, 2, 0, 0, 0, time.UTC) // 2am
	rng := rand.New(rand.NewSource(42))

	expr := athena.ToDNF(athena.MustParseExpr(
		"motion & !badgeSeen & (doorForced | windowBroken)"))
	meta := athena.MetaTable{
		"motion":       {Cost: 1_000, ProbTrue: 0.5, Validity: 30 * time.Second},
		"badgeSeen":    {Cost: 2_000, ProbTrue: 0.3, Validity: 5 * time.Minute},
		"doorForced":   {Cost: 50_000, ProbTrue: 0.2, Validity: 2 * time.Minute},
		"windowBroken": {Cost: 400_000, ProbTrue: 0.1, Validity: 2 * time.Minute},
	}

	// Tonight's ground truth: a real break-in through the door; no badge.
	truth := map[string]bool{
		"motion": true, "badgeSeen": false,
		"doorForced": true, "windowBroken": false,
	}

	// The motion sensor fires: the event creates the decision task with a
	// 20-second deadline (security must be dispatched quickly).
	fmt.Println("02:00:00 motion sensor fired -> decision task created")
	now := start
	decision := athena.NewDecision("intruder?", expr, now.Add(20*time.Second), meta)

	// The noisy door-vibration sensor needs corroboration: 20% error
	// rate, 95% target confidence.
	door := &annotate.Corroborator{Target: 0.95, Eps: 0.2}
	doorSensorReading := func() bool {
		v := truth["doorForced"]
		if rng.Float64() < 0.2 {
			v = !v
		}
		return v
	}

	for {
		status := decision.Step(now)
		if status != athena.Pending {
			fmt.Printf("%s decision: %s\n", now.Format("15:04:05"), status)
			if status == athena.ResolvedTrue {
				fmt.Println("-> dispatching security")
			}
			return nil
		}
		label, ok := decision.NextLabel(now)
		if !ok {
			return fmt.Errorf("no evidence can advance the decision")
		}

		switch label {
		case "doorForced":
			// Gather corroborating votes until confident (Section IV-B).
			for {
				vote := doorSensorReading()
				door.Add(vote)
				votesFor, votesAgainst := door.Votes()
				value, confident := door.Decided()
				fmt.Printf("%s doorForced vote: %v (tally %d-%d, confidence %.3f)\n",
					now.Format("15:04:05"), vote, votesFor, votesAgainst,
					annotate.Confidence(votesFor, votesAgainst, door.Eps))
				now = now.Add(time.Second)
				if confident {
					if err := decision.Set(label, value, now.Add(meta[label].Validity), "door-sensor", "corroborator"); err != nil {
						return err
					}
					break
				}
			}
		default:
			value := truth[label]
			fmt.Printf("%s %-12s -> %v\n", now.Format("15:04:05"), label, value)
			if err := decision.Set(label, value, now.Add(meta[label].Validity), label+"-sensor", "building"); err != nil {
				return err
			}
			now = now.Add(time.Second)
		}
	}
}

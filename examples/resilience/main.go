// Resilience: riding out injected faults with the retry/timeout
// recovery layer.
//
// A base station decides whether the perimeter is clear from a field
// camera two hops away. We inject faults into the simulated network —
// first a scheduled outage of the relay--camera link, then sustained
// random message loss — and run the same decision with the recovery
// layer on and off. With retries, forwarding nodes detect lapsed
// requests and retransmit (with exponential backoff, sized to the
// object being fetched); without, the first lost message strands the
// query until its deadline.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"time"

	"athena"
)

// world is the ground truth the camera's annotator reads.
type world struct{}

func (world) LabelValue(string, time.Time) bool { return true }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("--- scheduled link outage (relay--camera down for first 4s) ---")
	for _, retries := range []bool{true, false} {
		if err := outageRun(retries); err != nil {
			return err
		}
	}
	fmt.Println()
	fmt.Println("--- sustained random loss (25% of messages dropped) ---")
	for _, retries := range []bool{true, false} {
		if err := lossyRun(retries); err != nil {
			return err
		}
	}
	return nil
}

// build wires the two-hop line base -- relay -- camera over 1 Mbps
// links and returns the network plus the base node.
func build(retries bool) (*athena.SimNetwork, *athena.Node, error) {
	start := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)

	const mbps = 125_000.0
	for _, link := range [][2]string{{"base", "relay"}, {"relay", "camera"}} {
		if err := net.AddLink(link[0], link[1], mbps, 5*time.Millisecond); err != nil {
			return nil, nil, err
		}
	}

	cam := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/field/perimeter/cam"),
		Size:     100_000,
		Validity: 2 * time.Minute,
		Labels:   []string{"perimeterClear"},
		Source:   "camera",
		ProbTrue: 0.5,
	}
	for _, cfg := range []athena.SimNodeConfig{
		{ID: "base", Scheme: athena.SchemeLVF, World: world{}, DisableRetries: !retries},
		{ID: "relay", Scheme: athena.SchemeLVF, World: world{}, DisableRetries: !retries},
		{ID: "camera", Scheme: athena.SchemeLVF, World: world{}, Source: cam, DisableRetries: !retries},
	} {
		if err := net.AddNode(cfg); err != nil {
			return nil, nil, err
		}
	}
	base, err := net.Node("base")
	if err != nil {
		return nil, nil, err
	}
	return net, base, nil
}

// outageRun drops the relay--camera link for the first four seconds of
// the query. The base's request is forwarded by the relay into the dead
// link and vanishes; with retries the relay's retransmission timer
// recovers it once the link heals.
func outageRun(retries bool) error {
	net, base, err := build(retries)
	if err != nil {
		return err
	}
	if err := net.ScheduleLinkOutage("relay", "camera", net.Now(), 4*time.Second); err != nil {
		return err
	}
	return issue(net, base, retries)
}

// lossyRun drops 25% of all messages (seeded, so every run is
// identical). Retransmission turns each loss into added latency instead
// of a stranded query.
func lossyRun(retries bool) error {
	net, base, err := build(retries)
	if err != nil {
		return err
	}
	net.SeedFailures(4)
	if err := net.SetLoss(0.25); err != nil {
		return err
	}
	return issue(net, base, retries)
}

func issue(net *athena.SimNetwork, base *athena.Node, retries bool) error {
	expr := athena.ToDNF(athena.MustParseExpr("perimeterClear"))
	if _, err := base.QueryInit(expr, 20*time.Second); err != nil {
		return err
	}
	if err := net.Run(25 * time.Second); err != nil {
		return err
	}
	res := base.Results()
	if len(res) == 0 {
		return fmt.Errorf("query did not finish")
	}
	mode := "retries on "
	if !retries {
		mode = "retries off"
	}
	fmt.Printf("%s  ->  %-12v (%v elapsed, %d messages lost)\n",
		mode, res[0].Status,
		res[0].Finished.Sub(res[0].Issued).Round(100*time.Millisecond),
		net.MessagesLost())
	return nil
}

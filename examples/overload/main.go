// Overload: hierarchical semantic naming under congestion (Section V).
//
// A bottleneck link out of a disaster area can carry 4 MB before the
// reporting deadline, but 20 MB of camera imagery is queued. The example
// contrasts three deliveries:
//
//   - FIFO: forward whatever arrived first (mostly near-duplicate shots
//     of the same bridge);
//   - infomax triage (Section V-B): forward by marginal information
//     utility per byte, using shared name prefixes to estimate redundancy;
//   - approximate substitution (Section V-A): answer a request for
//     camera 2 with a cached shot from camera 1 of the same scene when
//     the names share a long prefix.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"athena/internal/cache"
	"athena/internal/infomax"
	"athena/internal/names"
	"athena/internal/object"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))

	// The backlog: 40 shots, heavily redundant (four sites, few angles).
	sites := []string{"/city/bridge", "/city/market", "/city/hospital", "/city/station"}
	queue := make([]infomax.Item, 40)
	for i := range queue {
		queue[i] = infomax.Item{
			Name: names.MustParse(fmt.Sprintf("%s/cam%d/shot%d",
				sites[rng.Intn(len(sites))], rng.Intn(3), rng.Intn(4))),
			Size:        int64(200_000 + rng.Intn(800_000)),
			BaseUtility: 1 + rng.Float64()*9,
		}
	}
	const budget = 4_000_000

	// FIFO delivery.
	var fifo []infomax.Item
	var used int64
	for _, it := range queue {
		if used+it.Size <= budget {
			used += it.Size
			fifo = append(fifo, it)
		}
	}

	// Infomax triage.
	order := infomax.Greedy(queue, budget)
	triaged := make([]infomax.Item, len(order))
	for i, idx := range order {
		triaged[i] = queue[idx]
	}

	fmt.Printf("bottleneck budget: %.1f MB of %.1f MB queued\n\n",
		float64(budget)/1e6, float64(totalSize(queue))/1e6)
	fmt.Printf("%-22s%10s%12s\n", "policy", "items", "utility")
	fmt.Printf("%-22s%10d%12.1f\n", "fifo", len(fifo), infomax.SetUtility(fifo))
	fmt.Printf("%-22s%10d%12.1f\n", "infomax triage", len(triaged), infomax.SetUtility(triaged))

	// Approximate substitution: a consumer asks for a shot from cam2 of
	// the bridge; the cache only has cam0's view of the same scene. The
	// long shared prefix (/city/bridge) makes it an acceptable stand-in
	// when approximate answers are allowed — and a congestion-control
	// valve: the request never crosses the bottleneck.
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	store := cache.NewStore(16 << 20)
	cached := &object.Object{
		ID:       object.ID{Name: names.MustParse("/city/bridge/cam0/shot1"), Version: 1},
		Size:     600_000,
		Created:  now,
		Validity: time.Minute,
	}
	store.Put(cached, now)

	want := names.MustParse("/city/bridge/cam2/shot0")
	fmt.Printf("\nrequest:  %s\n", want)
	if got, ok := store.Get(want, now); ok {
		fmt.Printf("exact:    %v\n", got.ID)
	} else {
		fmt.Println("exact:    miss")
	}
	if got, ok := store.GetApprox(want, 0.5, now); ok {
		fmt.Printf("approx:   %s (similarity %.2f) — served from cache, bottleneck spared\n",
			got.ID, want.Similarity(got.ID.Name))
	} else {
		fmt.Println("approx:   miss")
	}
	// Tighten the acceptable-approximation knob (congestion subsided):
	if _, ok := store.GetApprox(want, 0.9, now); !ok {
		fmt.Println("approx with similarity >= 0.9: refused (fetch the real object)")
	}
	return nil
}

func totalSize(items []infomax.Item) int64 {
	var n int64
	for _, it := range items {
		n += it.Size
	}
	return n
}

// Quickstart: the decision-driven execution loop in one file.
//
// We define a decision ("take route 1 or route 2?"), attach per-label
// metadata (cost, success probability, validity), and let the decision
// engine drive retrieval: it tells us which evidence to fetch next, we
// "fetch" it (here: look it up in a toy world), and the engine
// short-circuits the moment a course of action is decided.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"athena"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's route-finding decision: one of two routes must be fully
	// viable.
	expr, err := athena.ParseExpr(
		"(viableA & viableB & viableC) | (viableD & viableE & viableF)")
	if err != nil {
		return err
	}
	dnf := athena.ToDNF(expr)

	// Metadata of Section III-A: retrieval cost (object size), prior
	// probability of being viable, validity interval of the evidence.
	meta := athena.MetaTable{
		"viableA": {Cost: 4e5, ProbTrue: 0.9, Validity: 5 * time.Minute},
		"viableB": {Cost: 6e5, ProbTrue: 0.9, Validity: 5 * time.Minute},
		"viableC": {Cost: 2e5, ProbTrue: 0.9, Validity: 30 * time.Second},
		"viableD": {Cost: 9e5, ProbTrue: 0.4, Validity: 5 * time.Minute},
		"viableE": {Cost: 3e5, ProbTrue: 0.4, Validity: 5 * time.Minute},
		"viableF": {Cost: 5e5, ProbTrue: 0.4, Validity: 30 * time.Second},
	}

	// The ground truth our "sensors" will reveal: route 1 is blocked at
	// B, route 2 is fully viable.
	world := map[string]bool{
		"viableA": true, "viableB": false, "viableC": true,
		"viableD": true, "viableE": true, "viableF": true,
	}

	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	decision := athena.NewDecision("route-choice", dnf, now.Add(time.Minute), meta)

	fmt.Printf("decision:  %s\n", dnf)
	fmt.Printf("plan cost: %.0f bytes expected (naive would fetch everything)\n\n",
		athena.ExpectedQueryCost(dnf, meta, decision.Plan()))

	fetches := 0
	for {
		status := decision.Step(now)
		if status != athena.Pending {
			fmt.Printf("\ndecision made: %s after %d fetches (of %d labels total)\n",
				status, fetches, len(dnf.Labels()))
			return nil
		}
		label, ok := decision.NextLabel(now)
		if !ok {
			return fmt.Errorf("stuck: no label can advance the decision")
		}
		// "Fetch" the evidence: in the real system this is an object
		// retrieval over the network plus an annotator; see the
		// routefinding example for the distributed version.
		value := world[label]
		fetches++
		fmt.Printf("fetch %d: %-8s -> %v (cost %.0f)\n", fetches, label, value, meta[label].Cost)

		expiry := now.Add(meta[label].Validity)
		if err := decision.Set(label, value, expiry, "sensor:"+label, "me"); err != nil {
			return err
		}
		now = now.Add(2 * time.Second) // simulated retrieval time
	}
}

GO ?= go

.PHONY: all build vet test race ci figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate run before every merge: compile, static checks, and the
# full test suite under the race detector.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# figures reproduces the paper's evaluation tables (quick variants).
figures:
	$(GO) run ./cmd/athena-sim -fig all -quick

clean:
	$(GO) clean ./...

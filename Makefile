GO ?= go

.PHONY: all build vet lint test race fmt ci ci-short bench figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs athena-lint, the repo's own static-analysis gate: determinism
# (no wall clock / global rand / map-order output in sim-reachable code),
# lane isolation and float-fold order in kernel-handler-reachable code,
# wire-protocol exhaustiveness, lock discipline (including the inferred
# acquisition-order graph), metrics nil-safety, goroutine lifecycle, and
# dropped transport errors. `go run ./cmd/athena-lint -list` describes the
# checks; deliberate exceptions carry //lint:allow <check> <reason>.
lint:
	$(GO) run ./cmd/athena-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

# ci is the gate run before every merge: formatting, compile, static
# checks, the full test suite under the race detector, and the aggregate
# coverage floor. ci-short is the inner-loop variant (race suite with
# -short, skipping the long simulation sweeps and the coverage gate).
# Both are the same script so the gates can't drift apart.
ci:
	./ci.sh

ci-short:
	./ci.sh -short

# bench refreshes the committed benchmark baseline: the BenchmarkScheme
# family (end-to-end scheme runs reporting ns/op, resolution and MB), the
# membership control-plane benchmark (flood vs gossip bytes per node per
# interval at n=64), the directory-memory benchmark (entries held per
# node, sharded vs full replica), the simulation-kernel benchmark
# (n=512 synthetic workload at W=1 and W=NumCPU), and the data-plane
# batching benchmark (A11 incast at n=64, coalescing off/on), parsed
# into machine-readable JSON. CI archives the file per commit;
# regressions are judged against the committed baseline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkScheme|BenchmarkMembershipControlPlane|BenchmarkDirectoryMemory|BenchmarkSimKernel|BenchmarkBatchedFetch' -benchmem -benchtime 3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_core.json

# figures reproduces the paper's evaluation tables (quick variants).
figures:
	$(GO) run ./cmd/athena-sim -fig all -quick

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build vet test race fmt ci ci-short figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

# ci is the gate run before every merge: formatting, compile, static
# checks, and the full test suite under the race detector.
ci:
	./ci.sh

# ci-short is the inner-loop variant: the race suite with -short, which
# skips the long simulation sweeps.
ci-short:
	test -z "$$(gofmt -l .)"
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -short ./...

# figures reproduces the paper's evaluation tables (quick variants).
figures:
	$(GO) run ./cmd/athena-sim -fig all -quick

clean:
	$(GO) clean ./...

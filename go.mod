module athena

go 1.22

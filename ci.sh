#!/bin/sh
# CI gate: formatting, compile, vet, and the full test suite under the
# race detector.
set -eux

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
go test -race ./...

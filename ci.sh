#!/bin/sh
# CI gate: formatting, compile, vet, the full test suite under the race
# detector, and (full mode only) an aggregate coverage floor plus an
# allocation-regression gate against the committed benchmark baseline.
#
#   ./ci.sh          full gate, as run before every merge
#   ./ci.sh -short   inner-loop variant: passes -short to the race suite,
#                    skipping the long simulation sweeps and the coverage
#                    and allocation gates (a -short run exercises less
#                    code by design)
set -eux

# Minimum aggregate statement coverage, in tenths of a percent (740 =
# 74.0%). Set just under the measured total so coverage can only ratchet
# up; raise it when the measured number climbs.
COVER_FLOOR=740

short=0
case "${1:-}" in
-short) short=1 ;;
"") ;;
*)
	echo "usage: $0 [-short]" >&2
	exit 2
	;;
esac

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
# Repo-specific invariants: determinism, lock discipline, lane
# isolation, wire-protocol exhaustiveness, metrics nil-safety, goroutine
# lifecycle, dropped transport errors. The run is budgeted: the gate
# loads and type-checks the whole module plus a call-graph fixpoint, and
# a pass that creeps past 90 seconds of wall time is a gate developers
# will start skipping.
lint_start="$(date +%s)"
go run ./cmd/athena-lint ./...
lint_elapsed="$(($(date +%s) - lint_start))"
if [ "$lint_elapsed" -gt 90 ]; then
	echo "athena-lint took ${lint_elapsed}s, over the 90s wall-time budget" >&2
	exit 1
fi

if [ "$short" = 1 ]; then
	go test -race -short ./...
	exit 0
fi

go test -race -coverprofile=coverage.out ./...
go tool cover -func=coverage.out
total="$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
# Compare in tenths of a percent to stay POSIX-sh (no float arithmetic).
tenths="$(echo "$total" | awk '{printf "%d", $1 * 10}')"
if [ "$tenths" -lt "$COVER_FLOOR" ]; then
	echo "coverage $total% is below the $(awk "BEGIN{print $COVER_FLOOR / 10}")% floor" >&2
	exit 1
fi

# Allocation-regression gate: allocs/op on the end-to-end lvf scheme run
# must stay within 10% of the committed baseline (BENCH_core.json, see
# `make bench`). Alloc counts, unlike ns/op, are stable across machines,
# so a trip here means a real regression — a closure, boxing, or copy
# crept into the per-query path. Refresh the baseline with `make bench`
# when an intentional change moves the number.
baseline="$(awk '/"name": "BenchmarkScheme\/lvf"/{f=1} f && /"allocs\/op"/{gsub(/[^0-9]/, ""); print; exit}' BENCH_core.json)"
if [ -z "$baseline" ]; then
	echo "BenchmarkScheme/lvf allocs/op baseline missing from BENCH_core.json" >&2
	exit 1
fi
measured="$(go test -run '^$' -bench 'BenchmarkScheme$/^lvf$' -benchmem -benchtime 3x . |
	awk '$1 ~ /^BenchmarkScheme\/lvf/ {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i - 1)}')"
if [ -z "$measured" ]; then
	echo "BenchmarkScheme/lvf did not run" >&2
	exit 1
fi
limit=$((baseline + baseline / 10))
if [ "$measured" -gt "$limit" ]; then
	echo "BenchmarkScheme/lvf allocs/op regressed: $measured > $limit (baseline $baseline + 10%)" >&2
	exit 1
fi

# Retention-regression gate: directory entries held per node on the
# sharded A9 rig are deterministic, so any growth past the committed
# baseline means the retention filter got leakier (records kept outside
# owned shards). Same 10% slack, same refresh path (`make bench`).
dm_baseline="$(awk '/"name": "BenchmarkDirectoryMemory\/sharded"/{f=1} f && /"entries\/node"/{gsub(/,/, "", $2); printf "%d", $2; exit}' BENCH_core.json)"
if [ -z "$dm_baseline" ]; then
	echo "BenchmarkDirectoryMemory/sharded entries/node baseline missing from BENCH_core.json" >&2
	exit 1
fi
dm_measured="$(go test -run '^$' -bench 'BenchmarkDirectoryMemory$/^sharded$' -benchtime 1x . |
	awk '$1 ~ /^BenchmarkDirectoryMemory\/sharded/ {for (i = 2; i <= NF; i++) if ($i == "entries/node") printf "%d", $(i - 1)}')"
if [ -z "$dm_measured" ]; then
	echo "BenchmarkDirectoryMemory/sharded did not run" >&2
	exit 1
fi
dm_limit=$((dm_baseline + dm_baseline / 10))
if [ "$dm_measured" -gt "$dm_limit" ]; then
	echo "BenchmarkDirectoryMemory/sharded entries/node regressed: $dm_measured > $dm_limit (baseline $dm_baseline + 10%)" >&2
	exit 1
fi

# Kernel allocation gate: allocs/op of a complete n=512 single-worker
# kernel simulation. Events are pooled, so this number is the
# deterministic setup cost; growth past the committed baseline means the
# per-event path started allocating. Same 10% slack, same refresh path
# (`make bench`). Only the W=1 variant is gated — multi-worker alloc
# counts depend on how the runtime grows per-worker stacks and pools.
sk_baseline="$(awk '/"name": "BenchmarkSimKernel\/w1"/{f=1} f && /"allocs\/op"/{gsub(/[^0-9]/, ""); print; exit}' BENCH_core.json)"
if [ -z "$sk_baseline" ]; then
	echo "BenchmarkSimKernel/w1 allocs/op baseline missing from BENCH_core.json" >&2
	exit 1
fi
sk_measured="$(go test -run '^$' -bench 'BenchmarkSimKernel$/^w1$' -benchmem -benchtime 3x . |
	awk '$1 ~ /^BenchmarkSimKernel\/w1/ {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i - 1)}')"
if [ -z "$sk_measured" ]; then
	echo "BenchmarkSimKernel/w1 did not run" >&2
	exit 1
fi
sk_limit=$((sk_baseline + sk_baseline / 10))
if [ "$sk_measured" -gt "$sk_limit" ]; then
	echo "BenchmarkSimKernel/w1 allocs/op regressed: $sk_measured > $sk_limit (baseline $sk_baseline + 10%)" >&2
	exit 1
fi

# Coalescing-regression gate: frames/node on the batched A11 incast
# (n=64, fan-in 8, 10ms window, single worker) is deterministic, so any
# growth past the committed baseline means the coalescing layer stopped
# merging traffic it used to merge — a queue bypassed, a flush firing
# early, or a batch split. Same 10% slack, same refresh path
# (`make bench`).
bf_baseline="$(awk '/"name": "BenchmarkBatchedFetch\/on"/{f=1} f && /"frames\/node"/{gsub(/,/, "", $2); printf "%d", $2; exit}' BENCH_core.json)"
if [ -z "$bf_baseline" ]; then
	echo "BenchmarkBatchedFetch/on frames/node baseline missing from BENCH_core.json" >&2
	exit 1
fi
bf_measured="$(go test -run '^$' -bench 'BenchmarkBatchedFetch$/^on$' -benchtime 1x . |
	awk '$1 ~ /^BenchmarkBatchedFetch\/on/ {for (i = 2; i <= NF; i++) if ($i == "frames/node") printf "%d", $(i - 1)}')"
if [ -z "$bf_measured" ]; then
	echo "BenchmarkBatchedFetch/on did not run" >&2
	exit 1
fi
bf_limit=$((bf_baseline + bf_baseline / 10))
if [ "$bf_measured" -gt "$bf_limit" ]; then
	echo "BenchmarkBatchedFetch/on frames/node regressed: $bf_measured > $bf_limit (baseline $bf_baseline + 10%)" >&2
	exit 1
fi
